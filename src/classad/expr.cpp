#include "condorg/classad/expr.h"

#include <cmath>

#include "condorg/classad/classad.h"
#include "condorg/util/strings.h"

namespace condorg::classad {
namespace {

/// RAII guard for the recursion budget; yields ERROR when exhausted (cyclic
/// attribute definitions).
struct DepthGuard {
  explicit DepthGuard(EvalContext& context) : ctx(context) { ++ctx.depth; }
  ~DepthGuard() { --ctx.depth; }
  bool exceeded() const { return ctx.depth > EvalContext::kMaxDepth; }
  EvalContext& ctx;
};

Value numeric_binary(BinaryOp op, const Value& a, const Value& b) {
  double x = 0, y = 0;
  if (!a.to_number(x) || !b.to_number(y)) return Value::error();
  const bool both_int = a.is_int() && b.is_int();
  switch (op) {
    case BinaryOp::kAdd:
      return both_int ? Value::integer(a.as_int() + b.as_int())
                      : Value::real(x + y);
    case BinaryOp::kSub:
      return both_int ? Value::integer(a.as_int() - b.as_int())
                      : Value::real(x - y);
    case BinaryOp::kMul:
      return both_int ? Value::integer(a.as_int() * b.as_int())
                      : Value::real(x * y);
    case BinaryOp::kDiv:
      if (both_int) {
        if (b.as_int() == 0) return Value::error();
        return Value::integer(a.as_int() / b.as_int());
      }
      if (y == 0.0) return Value::error();
      return Value::real(x / y);
    case BinaryOp::kMod:
      if (both_int) {
        if (b.as_int() == 0) return Value::error();
        return Value::integer(a.as_int() % b.as_int());
      }
      if (y == 0.0) return Value::error();
      return Value::real(std::fmod(x, y));
    default:
      return Value::error();
  }
}

/// Fuzzy comparison: numbers compare numerically (bool coerces), strings
/// case-insensitively. Mixed incomparable types are an ERROR.
Value compare(BinaryOp op, const Value& a, const Value& b) {
  int cmp;  // -1, 0, 1
  double x = 0, y = 0;
  if (a.to_number(x) && b.to_number(y)) {
    cmp = x < y ? -1 : (x > y ? 1 : 0);
  } else if (a.is_string() && b.is_string()) {
    const std::string la = util::to_lower(a.as_string());
    const std::string lb = util::to_lower(b.as_string());
    cmp = la < lb ? -1 : (la > lb ? 1 : 0);
  } else {
    return Value::error();
  }
  switch (op) {
    case BinaryOp::kLess: return Value::boolean(cmp < 0);
    case BinaryOp::kLessEq: return Value::boolean(cmp <= 0);
    case BinaryOp::kGreater: return Value::boolean(cmp > 0);
    case BinaryOp::kGreaterEq: return Value::boolean(cmp >= 0);
    case BinaryOp::kEq: return Value::boolean(cmp == 0);
    case BinaryOp::kNotEq: return Value::boolean(cmp != 0);
    default: return Value::error();
  }
}

const char* op_text(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kLess: return "<";
    case BinaryOp::kLessEq: return "<=";
    case BinaryOp::kGreater: return ">";
    case BinaryOp::kGreaterEq: return ">=";
    case BinaryOp::kEq: return "==";
    case BinaryOp::kNotEq: return "!=";
    case BinaryOp::kMetaEq: return "=?=";
    case BinaryOp::kMetaNotEq: return "=!=";
    case BinaryOp::kAnd: return "&&";
    case BinaryOp::kOr: return "||";
  }
  return "?";
}

}  // namespace

Value eval_fuzzy_compare(BinaryOp op, const Value& a, const Value& b) {
  return compare(op, a, b);
}

// ---------- AttrRefExpr ----------

Value AttrRefExpr::eval(EvalContext& ctx) const {
  DepthGuard guard(ctx);
  if (guard.exceeded()) return Value::error();

  const ClassAd* primary = nullptr;
  const ClassAd* secondary = nullptr;
  switch (scope_) {
    case AttrScope::kMy:
      primary = ctx.my;
      break;
    case AttrScope::kTarget:
      primary = ctx.target;
      break;
    case AttrScope::kNone:
      primary = ctx.my;
      secondary = ctx.target;
      break;
  }
  for (const ClassAd* ad : {primary, secondary}) {
    if (ad == nullptr) continue;
    if (const ExprPtr expr = ad->lookup(name_)) {
      // Attribute bodies evaluate with MY bound to their own ad; when the
      // reference crossed into the target ad, the scopes swap.
      if (ad == ctx.my || ctx.my == nullptr) {
        return expr->eval(ctx);
      }
      EvalContext swapped;
      swapped.my = ctx.target;
      swapped.target = ctx.my;
      swapped.depth = ctx.depth;
      return expr->eval(swapped);
    }
  }
  return Value::undefined();
}

std::string AttrRefExpr::unparse() const {
  switch (scope_) {
    case AttrScope::kMy: return "MY." + name_;
    case AttrScope::kTarget: return "TARGET." + name_;
    case AttrScope::kNone: return name_;
  }
  return name_;
}

// ---------- UnaryExpr ----------

Value UnaryExpr::eval(EvalContext& ctx) const {
  DepthGuard guard(ctx);
  if (guard.exceeded()) return Value::error();
  const Value v = operand_->eval(ctx);
  if (v.is_undefined()) return v;
  if (v.is_error()) return v;
  switch (op_) {
    case UnaryOp::kMinus:
      if (v.is_int()) return Value::integer(-v.as_int());
      if (v.is_real()) return Value::real(-v.as_real());
      return Value::error();
    case UnaryOp::kPlus:
      if (v.is_number()) return v;
      return Value::error();
    case UnaryOp::kNot:
      if (v.is_bool()) return Value::boolean(!v.as_bool());
      return Value::error();
  }
  return Value::error();
}

std::string UnaryExpr::unparse() const {
  const char* op = op_ == UnaryOp::kMinus ? "-"
                   : op_ == UnaryOp::kPlus ? "+"
                                           : "!";
  return std::string(op) + "(" + operand_->unparse() + ")";
}

// ---------- BinaryExpr ----------

Value BinaryExpr::eval(EvalContext& ctx) const {
  DepthGuard guard(ctx);
  if (guard.exceeded()) return Value::error();

  // Non-strict boolean connectives: evaluate left first and let the
  // absorbing element (FALSE for &&, TRUE for ||) short-circuit even past
  // UNDEFINED/ERROR on the other side.
  if (op_ == BinaryOp::kAnd || op_ == BinaryOp::kOr) {
    const bool is_and = op_ == BinaryOp::kAnd;
    const Value a = lhs_->eval(ctx);
    if (a.is_bool() && a.as_bool() != is_and) return a;  // absorbed
    const Value b = rhs_->eval(ctx);
    if (b.is_bool() && b.as_bool() != is_and) return b;  // absorbed
    // Neither side absorbed: ERROR dominates UNDEFINED dominates bool.
    for (const Value* v : {&a, &b}) {
      if (v->is_error() || (!v->is_bool() && !v->is_undefined())) {
        return Value::error();
      }
    }
    if (a.is_undefined() || b.is_undefined()) return Value::undefined();
    return Value::boolean(is_and);  // both true (for &&) / both false (||)
  }

  const Value a = lhs_->eval(ctx);
  const Value b = rhs_->eval(ctx);

  // Structural (meta) comparison never yields UNDEFINED.
  if (op_ == BinaryOp::kMetaEq) return Value::boolean(a.same_as(b));
  if (op_ == BinaryOp::kMetaNotEq) return Value::boolean(!a.same_as(b));

  // Strict operators: propagate ERROR, then UNDEFINED.
  if (a.is_error() || b.is_error()) return Value::error();
  if (a.is_undefined() || b.is_undefined()) return Value::undefined();

  switch (op_) {
    case BinaryOp::kAdd:
      // '+' concatenates strings as a convenience.
      if (a.is_string() && b.is_string()) {
        return Value::string(a.as_string() + b.as_string());
      }
      [[fallthrough]];
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod:
      return numeric_binary(op_, a, b);
    case BinaryOp::kEq:
    case BinaryOp::kNotEq:
      // bool == bool is allowed via numeric coercion in compare().
      return compare(op_, a, b);
    case BinaryOp::kLess:
    case BinaryOp::kLessEq:
    case BinaryOp::kGreater:
    case BinaryOp::kGreaterEq:
      return compare(op_, a, b);
    default:
      return Value::error();
  }
}

std::string BinaryExpr::unparse() const {
  return "(" + lhs_->unparse() + " " + op_text(op_) + " " + rhs_->unparse() +
         ")";
}

// ---------- TernaryExpr ----------

Value TernaryExpr::eval(EvalContext& ctx) const {
  DepthGuard guard(ctx);
  if (guard.exceeded()) return Value::error();
  const Value c = cond_->eval(ctx);
  if (c.is_undefined()) return Value::undefined();
  if (!c.is_bool()) return Value::error();
  return c.as_bool() ? then_->eval(ctx) : else_->eval(ctx);
}

std::string TernaryExpr::unparse() const {
  return "(" + cond_->unparse() + " ? " + then_->unparse() + " : " +
         else_->unparse() + ")";
}

// ---------- CallExpr ----------

Value CallExpr::eval(EvalContext& ctx) const {
  DepthGuard guard(ctx);
  if (guard.exceeded()) return Value::error();
  const Builtin fn = find_builtin(name_);
  if (fn == nullptr) return Value::error();
  std::vector<Value> args;
  args.reserve(args_.size());
  for (const ExprPtr& arg : args_) args.push_back(arg->eval(ctx));
  return fn(args, ctx);
}

std::string CallExpr::unparse() const {
  std::string out = name_ + "(";
  for (std::size_t i = 0; i < args_.size(); ++i) {
    if (i) out += ", ";
    out += args_[i]->unparse();
  }
  out += ")";
  return out;
}

// ---------- ListExpr ----------

Value ListExpr::eval(EvalContext& ctx) const {
  DepthGuard guard(ctx);
  if (guard.exceeded()) return Value::error();
  ValueList items;
  items.reserve(items_.size());
  for (const ExprPtr& item : items_) items.push_back(item->eval(ctx));
  return Value::list(std::move(items));
}

std::string ListExpr::unparse() const {
  std::string out = "{";
  for (std::size_t i = 0; i < items_.size(); ++i) {
    if (i) out += ", ";
    out += items_[i]->unparse();
  }
  out += "}";
  return out;
}

}  // namespace condorg::classad
