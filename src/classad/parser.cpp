#include "condorg/classad/parser.h"

#include <utility>

#include "condorg/classad/lexer.h"
#include "condorg/util/strings.h"

namespace condorg::classad {
namespace {

// ---------- parse-time constant folding ----------
//
// Literal subtrees are evaluated once here instead of on every match cycle.
// Folding is restricted to operators whose result on plain values cannot
// depend on the evaluation context: unary/binary/ternary nodes over literal
// operands (expression evaluation is pure), plus the absorbing boolean
// short-circuits (false && X == false, true || X == true for every X,
// including ERROR, per the non-strict connective semantics in expr.cpp).
// Calls and lists are never folded: builtins may consult the context.

ExprPtr make_unary(UnaryOp op, ExprPtr operand) {
  const bool foldable = operand->literal() != nullptr;
  auto node = std::make_shared<UnaryExpr>(op, std::move(operand));
  if (foldable) {
    EvalContext ctx;
    return std::make_shared<LiteralExpr>(node->eval(ctx));
  }
  return node;
}

ExprPtr make_binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  const Value* left_lit = lhs->literal();
  const Value* right_lit = rhs->literal();
  if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
    const bool absorber = op == BinaryOp::kOr;  // true for ||, false for &&
    if (left_lit != nullptr && left_lit->is_bool() &&
        left_lit->as_bool() == absorber) {
      return lhs;  // absorbed before rhs would ever run
    }
    if (right_lit != nullptr && right_lit->is_bool() &&
        right_lit->as_bool() == absorber) {
      return rhs;  // lhs eval is pure; the absorber still wins
    }
  }
  auto node = std::make_shared<BinaryExpr>(op, std::move(lhs), std::move(rhs));
  if (left_lit != nullptr && right_lit != nullptr) {
    EvalContext ctx;
    return std::make_shared<LiteralExpr>(node->eval(ctx));
  }
  return node;
}

ExprPtr make_ternary(ExprPtr cond, ExprPtr then_expr, ExprPtr else_expr) {
  if (const Value* lit = cond->literal()) {
    if (lit->is_bool()) return lit->as_bool() ? then_expr : else_expr;
    if (lit->is_undefined()) {
      return std::make_shared<LiteralExpr>(Value::undefined());
    }
    return std::make_shared<LiteralExpr>(Value::error());
  }
  return std::make_shared<TernaryExpr>(std::move(cond), std::move(then_expr),
                                       std::move(else_expr));
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  ExprPtr parse_expression_all() {
    ExprPtr expr = expression();
    expect(TokenKind::kEnd, "trailing input after expression");
    return expr;
  }

  ClassAd parse_ad_all() {
    ClassAd ad;
    if (peek().kind == TokenKind::kLBracket) {
      parse_bracketed_ad(ad);
      expect(TokenKind::kEnd, "trailing input after ad");
      return ad;
    }
    // Submit-file style: a sequence of `name = expr` pairs, optionally
    // separated by semicolons.
    while (peek().kind != TokenKind::kEnd) {
      parse_assignment(ad);
      while (accept(TokenKind::kSemicolon)) {
      }
    }
    return ad;
  }

  ExprPtr expression() { return ternary(); }

 private:
  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& advance() { return tokens_[pos_++]; }
  bool accept(TokenKind kind) {
    if (peek().kind == kind) {
      ++pos_;
      return true;
    }
    return false;
  }
  void expect(TokenKind kind, const char* what) {
    if (!accept(kind)) {
      throw ParseError(std::string("parse error: expected ") + what +
                       " at offset " + std::to_string(peek().offset));
    }
  }

  void parse_bracketed_ad(ClassAd& ad) {
    expect(TokenKind::kLBracket, "'['");
    while (peek().kind != TokenKind::kRBracket) {
      parse_assignment(ad);
      if (!accept(TokenKind::kSemicolon)) break;
    }
    expect(TokenKind::kRBracket, "']'");
  }

  void parse_assignment(ClassAd& ad) {
    if (peek().kind != TokenKind::kIdentifier) {
      throw ParseError("parse error: expected attribute name at offset " +
                       std::to_string(peek().offset));
    }
    const std::string name = advance().text;
    expect(TokenKind::kAssign, "'='");
    ad.insert(name, expression());
  }

  ExprPtr ternary() {
    ExprPtr cond = logical_or();
    if (accept(TokenKind::kQuestion)) {
      ExprPtr then_expr = expression();
      expect(TokenKind::kColon, "':'");
      ExprPtr else_expr = expression();
      return make_ternary(std::move(cond), std::move(then_expr),
                          std::move(else_expr));
    }
    return cond;
  }

  ExprPtr logical_or() {
    ExprPtr lhs = logical_and();
    while (accept(TokenKind::kOr)) {
      lhs = make_binary(BinaryOp::kOr, std::move(lhs), logical_and());
    }
    return lhs;
  }

  ExprPtr logical_and() {
    ExprPtr lhs = comparison();
    while (accept(TokenKind::kAnd)) {
      lhs = make_binary(BinaryOp::kAnd, std::move(lhs), comparison());
    }
    return lhs;
  }

  ExprPtr comparison() {
    ExprPtr lhs = additive();
    while (true) {
      BinaryOp op;
      switch (peek().kind) {
        case TokenKind::kLess: op = BinaryOp::kLess; break;
        case TokenKind::kLessEq: op = BinaryOp::kLessEq; break;
        case TokenKind::kGreater: op = BinaryOp::kGreater; break;
        case TokenKind::kGreaterEq: op = BinaryOp::kGreaterEq; break;
        case TokenKind::kEqEq: op = BinaryOp::kEq; break;
        case TokenKind::kNotEq: op = BinaryOp::kNotEq; break;
        case TokenKind::kMetaEq: op = BinaryOp::kMetaEq; break;
        case TokenKind::kMetaNotEq: op = BinaryOp::kMetaNotEq; break;
        default: return lhs;
      }
      advance();
      lhs = make_binary(op, std::move(lhs), additive());
    }
  }

  ExprPtr additive() {
    ExprPtr lhs = multiplicative();
    while (true) {
      BinaryOp op;
      if (peek().kind == TokenKind::kPlus) {
        op = BinaryOp::kAdd;
      } else if (peek().kind == TokenKind::kMinus) {
        op = BinaryOp::kSub;
      } else {
        return lhs;
      }
      advance();
      lhs = make_binary(op, std::move(lhs), multiplicative());
    }
  }

  ExprPtr multiplicative() {
    ExprPtr lhs = unary();
    while (true) {
      BinaryOp op;
      switch (peek().kind) {
        case TokenKind::kStar: op = BinaryOp::kMul; break;
        case TokenKind::kSlash: op = BinaryOp::kDiv; break;
        case TokenKind::kPercent: op = BinaryOp::kMod; break;
        default: return lhs;
      }
      advance();
      lhs = make_binary(op, std::move(lhs), unary());
    }
  }

  ExprPtr unary() {
    if (accept(TokenKind::kMinus)) {
      return make_unary(UnaryOp::kMinus, unary());
    }
    if (accept(TokenKind::kPlus)) {
      return make_unary(UnaryOp::kPlus, unary());
    }
    if (accept(TokenKind::kNot)) {
      return make_unary(UnaryOp::kNot, unary());
    }
    return primary();
  }

  ExprPtr primary() {
    const Token& tok = peek();
    switch (tok.kind) {
      case TokenKind::kInteger: {
        advance();
        return std::make_shared<LiteralExpr>(Value::integer(tok.int_value));
      }
      case TokenKind::kReal: {
        advance();
        return std::make_shared<LiteralExpr>(Value::real(tok.real_value));
      }
      case TokenKind::kString: {
        advance();
        return std::make_shared<LiteralExpr>(Value::string(tok.text));
      }
      case TokenKind::kLParen: {
        advance();
        ExprPtr inner = expression();
        expect(TokenKind::kRParen, "')'");
        return inner;
      }
      case TokenKind::kLBrace: {
        advance();
        std::vector<ExprPtr> items;
        if (peek().kind != TokenKind::kRBrace) {
          items.push_back(expression());
          while (accept(TokenKind::kComma)) items.push_back(expression());
        }
        expect(TokenKind::kRBrace, "'}'");
        return std::make_shared<ListExpr>(std::move(items));
      }
      case TokenKind::kIdentifier:
        return identifier_expr();
      default:
        throw ParseError("parse error: unexpected token at offset " +
                         std::to_string(tok.offset));
    }
  }

  ExprPtr identifier_expr() {
    const std::string name = advance().text;
    // Keyword literals.
    if (util::iequals(name, "true")) {
      return std::make_shared<LiteralExpr>(Value::boolean(true));
    }
    if (util::iequals(name, "false")) {
      return std::make_shared<LiteralExpr>(Value::boolean(false));
    }
    if (util::iequals(name, "undefined")) {
      return std::make_shared<LiteralExpr>(Value::undefined());
    }
    if (util::iequals(name, "error")) {
      return std::make_shared<LiteralExpr>(Value::error());
    }
    // Scope-qualified references: MY.Attr / TARGET.Attr / other.Attr.
    if ((util::iequals(name, "my") || util::iequals(name, "target") ||
         util::iequals(name, "other")) &&
        peek().kind == TokenKind::kDot) {
      advance();  // '.'
      if (peek().kind != TokenKind::kIdentifier) {
        throw ParseError(
            "parse error: expected attribute after scope at offset " +
            std::to_string(peek().offset));
      }
      const std::string attr = advance().text;
      const AttrScope scope =
          util::iequals(name, "my") ? AttrScope::kMy : AttrScope::kTarget;
      return std::make_shared<AttrRefExpr>(attr, scope);
    }
    // Function call.
    if (peek().kind == TokenKind::kLParen) {
      advance();
      std::vector<ExprPtr> args;
      if (peek().kind != TokenKind::kRParen) {
        args.push_back(expression());
        while (accept(TokenKind::kComma)) args.push_back(expression());
      }
      expect(TokenKind::kRParen, "')'");
      return std::make_shared<CallExpr>(name, std::move(args));
    }
    return std::make_shared<AttrRefExpr>(name, AttrScope::kNone);
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

ExprPtr parse_expr(const std::string& input) {
  try {
    Parser parser(tokenize(input));
    return parser.parse_expression_all();
  } catch (const LexError& e) {
    throw ParseError(e.what());
  }
}

ClassAd parse_ad(const std::string& input) {
  try {
    Parser parser(tokenize(input));
    return parser.parse_ad_all();
  } catch (const LexError& e) {
    throw ParseError(e.what());
  }
}

}  // namespace condorg::classad
