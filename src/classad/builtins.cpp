// Builtin function library for ClassAd expressions; the subset of Condor's
// library that grid resource/job ads actually use, plus introspection
// helpers. Unknown functions evaluate to ERROR.
#include <algorithm>
#include <cmath>
#include <map>

// GCC's -Wmaybe-uninitialized fires inside libstdc++'s <regex> machinery
// (std::function moves in _State<char>) when ASan instrumentation is on —
// GCC PR 105562, a false positive in the header, not in this file.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
#include <regex>
#include <string>
#include <vector>

#include "condorg/classad/expr.h"
#include "condorg/util/strings.h"

namespace condorg::classad {
namespace {

using Args = std::vector<Value>;

Value propagate_bad(const Args& args) {
  for (const Value& v : args) {
    if (v.is_error()) return Value::error();
  }
  for (const Value& v : args) {
    if (v.is_undefined()) return Value::undefined();
  }
  return Value::boolean(true);  // sentinel: nothing bad
}

// ---- string functions ----

Value fn_strcmp(const Args& args, EvalContext&) {
  if (args.size() != 2) return Value::error();
  const Value bad = propagate_bad(args);
  if (!bad.is_bool()) return bad;
  if (!args[0].is_string() || !args[1].is_string()) return Value::error();
  const int c = args[0].as_string().compare(args[1].as_string());
  return Value::integer(c < 0 ? -1 : (c > 0 ? 1 : 0));
}

Value fn_stricmp(const Args& args, EvalContext&) {
  if (args.size() != 2) return Value::error();
  const Value bad = propagate_bad(args);
  if (!bad.is_bool()) return bad;
  if (!args[0].is_string() || !args[1].is_string()) return Value::error();
  const std::string a = util::to_lower(args[0].as_string());
  const std::string b = util::to_lower(args[1].as_string());
  const int c = a.compare(b);
  return Value::integer(c < 0 ? -1 : (c > 0 ? 1 : 0));
}

Value fn_tolower(const Args& args, EvalContext&) {
  if (args.size() != 1) return Value::error();
  const Value bad = propagate_bad(args);
  if (!bad.is_bool()) return bad;
  if (!args[0].is_string()) return Value::error();
  return Value::string(util::to_lower(args[0].as_string()));
}

Value fn_toupper(const Args& args, EvalContext&) {
  if (args.size() != 1) return Value::error();
  const Value bad = propagate_bad(args);
  if (!bad.is_bool()) return bad;
  if (!args[0].is_string()) return Value::error();
  std::string s = args[0].as_string();
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return Value::string(std::move(s));
}

Value fn_size(const Args& args, EvalContext&) {
  if (args.size() != 1) return Value::error();
  const Value bad = propagate_bad(args);
  if (!bad.is_bool()) return bad;
  if (args[0].is_string()) {
    return Value::integer(static_cast<std::int64_t>(args[0].as_string().size()));
  }
  if (args[0].is_list()) {
    return Value::integer(static_cast<std::int64_t>(args[0].as_list().size()));
  }
  return Value::error();
}

Value fn_substr(const Args& args, EvalContext&) {
  if (args.size() != 2 && args.size() != 3) return Value::error();
  const Value bad = propagate_bad(args);
  if (!bad.is_bool()) return bad;
  if (!args[0].is_string() || !args[1].is_int()) return Value::error();
  const std::string& s = args[0].as_string();
  std::int64_t offset = args[1].as_int();
  if (offset < 0) offset = std::max<std::int64_t>(
      0, static_cast<std::int64_t>(s.size()) + offset);
  if (offset > static_cast<std::int64_t>(s.size())) return Value::string("");
  std::int64_t len = static_cast<std::int64_t>(s.size()) - offset;
  if (args.size() == 3) {
    if (!args[2].is_int()) return Value::error();
    len = std::min(len, std::max<std::int64_t>(0, args[2].as_int()));
  }
  return Value::string(s.substr(static_cast<std::size_t>(offset),
                                static_cast<std::size_t>(len)));
}

Value fn_strcat(const Args& args, EvalContext&) {
  const Value bad = propagate_bad(args);
  if (!bad.is_bool()) return bad;
  std::string out;
  for (const Value& v : args) {
    switch (v.type()) {
      case Value::Type::kString: out += v.as_string(); break;
      case Value::Type::kInt: out += std::to_string(v.as_int()); break;
      case Value::Type::kReal: out += util::format("%g", v.as_real()); break;
      case Value::Type::kBool: out += v.as_bool() ? "true" : "false"; break;
      default: return Value::error();
    }
  }
  return Value::string(std::move(out));
}

Value fn_regexp(const Args& args, EvalContext&) {
  if (args.size() != 2 && args.size() != 3) return Value::error();
  const Value bad = propagate_bad(args);
  if (!bad.is_bool()) return bad;
  if (!args[0].is_string() || !args[1].is_string()) return Value::error();
  auto flags = std::regex::ECMAScript;
  if (args.size() == 3) {
    if (!args[2].is_string()) return Value::error();
    if (args[2].as_string().find('i') != std::string::npos) {
      flags |= std::regex::icase;
    }
  }
  try {
    const std::regex re(args[0].as_string(), flags);
    return Value::boolean(std::regex_search(args[1].as_string(), re));
  } catch (const std::regex_error&) {
    return Value::error();
  }
}

// ---- string-list functions (Condor's "a, b, c" convention) ----

std::vector<std::string> split_list(const std::string& text,
                                    const std::string& delims) {
  std::vector<std::string> out;
  std::string current;
  for (const char c : text) {
    if (delims.find(c) != std::string::npos) {
      if (!current.empty()) out.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) out.push_back(current);
  return out;
}

Value string_list_member(const Args& args, bool case_sensitive) {
  if (args.size() != 2 && args.size() != 3) return Value::error();
  const Value bad = propagate_bad(args);
  if (!bad.is_bool()) return bad;
  if (!args[0].is_string() || !args[1].is_string()) return Value::error();
  std::string delims = " ,";
  if (args.size() == 3) {
    if (!args[2].is_string()) return Value::error();
    delims = args[2].as_string();
  }
  const std::string& needle = args[0].as_string();
  for (const std::string& item : split_list(args[1].as_string(), delims)) {
    if (case_sensitive ? item == needle : util::iequals(item, needle)) {
      return Value::boolean(true);
    }
  }
  return Value::boolean(false);
}

Value fn_string_list_member(const Args& args, EvalContext&) {
  return string_list_member(args, /*case_sensitive=*/true);
}

Value fn_string_list_imember(const Args& args, EvalContext&) {
  return string_list_member(args, /*case_sensitive=*/false);
}

Value fn_string_list_size(const Args& args, EvalContext&) {
  if (args.size() != 1 && args.size() != 2) return Value::error();
  const Value bad = propagate_bad(args);
  if (!bad.is_bool()) return bad;
  if (!args[0].is_string()) return Value::error();
  std::string delims = " ,";
  if (args.size() == 2) {
    if (!args[1].is_string()) return Value::error();
    delims = args[1].as_string();
  }
  return Value::integer(static_cast<std::int64_t>(
      split_list(args[0].as_string(), delims).size()));
}

Value fn_member(const Args& args, EvalContext&) {
  if (args.size() != 2) return Value::error();
  if (args[0].is_error() || args[1].is_error()) return Value::error();
  if (!args[1].is_list()) {
    return args[1].is_undefined() ? Value::undefined() : Value::error();
  }
  for (const Value& item : args[1].as_list()) {
    if (item.same_as(args[0])) return Value::boolean(true);
  }
  return Value::boolean(false);
}

// ---- numeric functions ----

Value fn_floor(const Args& args, EvalContext&) {
  if (args.size() != 1) return Value::error();
  const Value bad = propagate_bad(args);
  if (!bad.is_bool()) return bad;
  double d = 0;
  if (!args[0].to_number(d)) return Value::error();
  return Value::integer(static_cast<std::int64_t>(std::floor(d)));
}

Value fn_ceiling(const Args& args, EvalContext&) {
  if (args.size() != 1) return Value::error();
  const Value bad = propagate_bad(args);
  if (!bad.is_bool()) return bad;
  double d = 0;
  if (!args[0].to_number(d)) return Value::error();
  return Value::integer(static_cast<std::int64_t>(std::ceil(d)));
}

Value fn_round(const Args& args, EvalContext&) {
  if (args.size() != 1) return Value::error();
  const Value bad = propagate_bad(args);
  if (!bad.is_bool()) return bad;
  double d = 0;
  if (!args[0].to_number(d)) return Value::error();
  return Value::integer(static_cast<std::int64_t>(std::llround(d)));
}

Value fn_abs(const Args& args, EvalContext&) {
  if (args.size() != 1) return Value::error();
  const Value bad = propagate_bad(args);
  if (!bad.is_bool()) return bad;
  if (args[0].is_int()) return Value::integer(std::abs(args[0].as_int()));
  if (args[0].is_real()) return Value::real(std::fabs(args[0].as_real()));
  return Value::error();
}

Value fn_pow(const Args& args, EvalContext&) {
  if (args.size() != 2) return Value::error();
  const Value bad = propagate_bad(args);
  if (!bad.is_bool()) return bad;
  double base = 0, exp = 0;
  if (!args[0].to_number(base) || !args[1].to_number(exp)) {
    return Value::error();
  }
  return Value::real(std::pow(base, exp));
}

Value minmax(const Args& args, bool want_min) {
  if (args.empty()) return Value::error();
  const Value bad = propagate_bad(args);
  if (!bad.is_bool()) return bad;
  double best = 0;
  bool all_int = true;
  for (std::size_t i = 0; i < args.size(); ++i) {
    double d = 0;
    if (!args[i].to_number(d)) return Value::error();
    all_int = all_int && args[i].is_int();
    if (i == 0 || (want_min ? d < best : d > best)) best = d;
  }
  return all_int ? Value::integer(static_cast<std::int64_t>(best))
                 : Value::real(best);
}

Value fn_min(const Args& args, EvalContext&) { return minmax(args, true); }
Value fn_max(const Args& args, EvalContext&) { return minmax(args, false); }

// ---- conversion ----

Value fn_int(const Args& args, EvalContext&) {
  if (args.size() != 1) return Value::error();
  const Value bad = propagate_bad(args);
  if (!bad.is_bool()) return bad;
  double d = 0;
  if (args[0].to_number(d)) {
    return Value::integer(static_cast<std::int64_t>(d));
  }
  if (args[0].is_string()) {
    try {
      return Value::integer(std::stoll(args[0].as_string()));
    } catch (const std::exception&) {
      return Value::error();
    }
  }
  return Value::error();
}

Value fn_real(const Args& args, EvalContext&) {
  if (args.size() != 1) return Value::error();
  const Value bad = propagate_bad(args);
  if (!bad.is_bool()) return bad;
  double d = 0;
  if (args[0].to_number(d)) return Value::real(d);
  if (args[0].is_string()) {
    try {
      return Value::real(std::stod(args[0].as_string()));
    } catch (const std::exception&) {
      return Value::error();
    }
  }
  return Value::error();
}

Value fn_string(const Args& args, EvalContext&) {
  if (args.size() != 1) return Value::error();
  const Value bad = propagate_bad(args);
  if (!bad.is_bool()) return bad;
  if (args[0].is_string()) return args[0];
  switch (args[0].type()) {
    case Value::Type::kInt:
      return Value::string(std::to_string(args[0].as_int()));
    case Value::Type::kReal:
      return Value::string(util::format("%g", args[0].as_real()));
    case Value::Type::kBool:
      return Value::string(args[0].as_bool() ? "true" : "false");
    default:
      return Value::error();
  }
}

// ---- introspection & control ----

Value fn_is_undefined(const Args& args, EvalContext&) {
  if (args.size() != 1) return Value::error();
  return Value::boolean(args[0].is_undefined());
}

Value fn_is_error(const Args& args, EvalContext&) {
  if (args.size() != 1) return Value::error();
  return Value::boolean(args[0].is_error());
}

Value fn_is_string(const Args& args, EvalContext&) {
  if (args.size() != 1) return Value::error();
  return Value::boolean(args[0].is_string());
}

Value fn_is_integer(const Args& args, EvalContext&) {
  if (args.size() != 1) return Value::error();
  return Value::boolean(args[0].is_int());
}

Value fn_is_real(const Args& args, EvalContext&) {
  if (args.size() != 1) return Value::error();
  return Value::boolean(args[0].is_real());
}

Value fn_is_boolean(const Args& args, EvalContext&) {
  if (args.size() != 1) return Value::error();
  return Value::boolean(args[0].is_bool());
}

Value fn_if_then_else(const Args& args, EvalContext&) {
  if (args.size() != 3) return Value::error();
  if (args[0].is_undefined()) return Value::undefined();
  if (!args[0].is_bool()) return Value::error();
  return args[0].as_bool() ? args[1] : args[2];
}

const std::map<std::string, Builtin>& registry() {
  static const std::map<std::string, Builtin> kRegistry = {
      {"strcmp", fn_strcmp},
      {"stricmp", fn_stricmp},
      {"tolower", fn_tolower},
      {"toupper", fn_toupper},
      {"size", fn_size},
      {"substr", fn_substr},
      {"strcat", fn_strcat},
      {"regexp", fn_regexp},
      {"stringlistmember", fn_string_list_member},
      {"stringlistimember", fn_string_list_imember},
      {"stringlistsize", fn_string_list_size},
      {"member", fn_member},
      {"floor", fn_floor},
      {"ceiling", fn_ceiling},
      {"round", fn_round},
      {"abs", fn_abs},
      {"pow", fn_pow},
      {"min", fn_min},
      {"max", fn_max},
      {"int", fn_int},
      {"real", fn_real},
      {"string", fn_string},
      {"isundefined", fn_is_undefined},
      {"iserror", fn_is_error},
      {"isstring", fn_is_string},
      {"isinteger", fn_is_integer},
      {"isreal", fn_is_real},
      {"isboolean", fn_is_boolean},
      {"ifthenelse", fn_if_then_else},
  };
  return kRegistry;
}

}  // namespace

Builtin find_builtin(const std::string& name) {
  const auto& reg = registry();
  const auto it = reg.find(util::to_lower(name));
  return it == reg.end() ? nullptr : it->second;
}

std::vector<std::string> builtin_names() {
  std::vector<std::string> names;
  for (const auto& [name, fn] : registry()) names.push_back(name);
  return names;
}

}  // namespace condorg::classad
