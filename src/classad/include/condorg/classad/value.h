// ClassAd values.
//
// ClassAds (the "classified advertisement" language of Condor's Matchmaking
// framework, Raman et al. 1998) use a three-valued logic: in addition to
// ordinary booleans/numbers/strings, expressions can evaluate to UNDEFINED
// (an attribute was absent) or ERROR (a type error occurred). The evaluator
// propagates these so that half-specified ads never match spuriously.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace condorg::classad {

class Value;
using ValueList = std::vector<Value>;

class Value {
 public:
  enum class Type { kUndefined, kError, kBool, kInt, kReal, kString, kList };

  Value() : data_(Undefined{}) {}

  static Value undefined() { return Value(); }
  static Value error() {
    Value v;
    v.data_ = ErrorT{};
    return v;
  }
  static Value boolean(bool b) {
    Value v;
    v.data_ = b;
    return v;
  }
  static Value integer(std::int64_t i) {
    Value v;
    v.data_ = i;
    return v;
  }
  static Value real(double d) {
    Value v;
    v.data_ = d;
    return v;
  }
  static Value string(std::string s) {
    Value v;
    v.data_ = std::move(s);
    return v;
  }
  static Value list(ValueList items);

  Type type() const;
  bool is_undefined() const { return type() == Type::kUndefined; }
  bool is_error() const { return type() == Type::kError; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_int() const { return type() == Type::kInt; }
  bool is_real() const { return type() == Type::kReal; }
  bool is_number() const { return is_int() || is_real(); }
  bool is_string() const { return type() == Type::kString; }
  bool is_list() const { return type() == Type::kList; }

  /// Accessors; only valid when the type matches.
  bool as_bool() const { return std::get<bool>(data_); }
  std::int64_t as_int() const { return std::get<std::int64_t>(data_); }
  double as_real() const { return std::get<double>(data_); }
  const std::string& as_string() const { return std::get<std::string>(data_); }
  const ValueList& as_list() const;

  /// Numeric coercion: int → its value, real → itself, bool → 0/1.
  /// Returns false (and leaves out untouched) for other types.
  bool to_number(double& out) const;

  /// Render in ClassAd literal syntax (strings quoted and escaped).
  std::string unparse() const;

  /// Structural equality (exact type + payload; lists compared recursively).
  /// This is =?= semantics, not the fuzzy == operator.
  bool same_as(const Value& other) const;

 private:
  struct Undefined {
    bool operator==(const Undefined&) const = default;
  };
  struct ErrorT {
    bool operator==(const ErrorT&) const = default;
  };
  // shared_ptr keeps Value cheap to copy; lists are immutable once built.
  using Data = std::variant<Undefined, ErrorT, bool, std::int64_t, double,
                            std::string, std::shared_ptr<const ValueList>>;
  Data data_;
};

}  // namespace condorg::classad
