// Tokenizer for the ClassAd expression language.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace condorg::classad {

enum class TokenKind {
  kEnd,
  kIdentifier,  // attribute names, true/false/undefined/error keywords
  kInteger,
  kReal,
  kString,
  // punctuation / operators
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
  kComma, kSemicolon, kDot,
  kPlus, kMinus, kStar, kSlash, kPercent,
  kLess, kLessEq, kGreater, kGreaterEq,
  kEqEq, kNotEq, kMetaEq, kMetaNotEq,  // ==  !=  =?=  =!=
  kAnd, kOr, kNot,
  kQuestion, kColon,
  kAssign,  // '=' inside [ name = expr; ... ] ads
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;        // identifier or string payload
  std::int64_t int_value = 0;
  double real_value = 0.0;
  std::size_t offset = 0;  // position in input, for error messages
};

class LexError : public std::runtime_error {
 public:
  LexError(const std::string& message, std::size_t at)
      : std::runtime_error(message + " (at offset " + std::to_string(at) +
                           ")"),
        offset(at) {}
  std::size_t offset;
};

/// Tokenize the whole input. Throws LexError on malformed input.
std::vector<Token> tokenize(const std::string& input);

}  // namespace condorg::classad
