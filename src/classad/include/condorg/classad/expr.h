// ClassAd expression AST and evaluator.
//
// Evaluation implements the classic Condor semantics:
//   * arithmetic/comparison with UNDEFINED yields UNDEFINED; ERROR dominates;
//   * && and || are non-strict: FALSE absorbs UNDEFINED in &&, TRUE in ||;
//   * string == / != are case-insensitive (use strcmp() for sensitivity);
//   * =?= / =!= ("is" / "isnt") compare structurally and never yield
//     UNDEFINED;
//   * unqualified attribute references resolve in the ad being evaluated,
//     then (during matchmaking) in the candidate ad; MY./TARGET. qualify
//     explicitly.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "condorg/classad/value.h"

namespace condorg::classad {

class ClassAd;
class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// Evaluation environment: the ad being evaluated ("MY"), the optional
/// candidate ad ("TARGET"), and a recursion budget guarding cyclic ads.
struct EvalContext {
  const ClassAd* my = nullptr;
  const ClassAd* target = nullptr;
  int depth = 0;
  static constexpr int kMaxDepth = 96;
};

enum class UnaryOp { kMinus, kPlus, kNot };

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kLess, kLessEq, kGreater, kGreaterEq,
  kEq, kNotEq,       // fuzzy (case-insensitive strings, undefined-propagating)
  kMetaEq, kMetaNotEq,  // structural, never undefined
  kAnd, kOr,
};

enum class AttrScope { kNone, kMy, kTarget };

class Expr {
 public:
  virtual ~Expr() = default;
  virtual Value eval(EvalContext& ctx) const = 0;
  virtual std::string unparse() const = 0;

  /// Non-null iff this node is a literal — the constant-folding and
  /// matchmaking pre-filter fast paths branch on this without RTTI.
  virtual const Value* literal() const { return nullptr; }

  /// Evaluate with a fresh context (no target).
  Value evaluate(const ClassAd* my = nullptr,
                 const ClassAd* target = nullptr) const {
    EvalContext ctx;
    ctx.my = my;
    ctx.target = target;
    return eval(ctx);
  }
};

class LiteralExpr final : public Expr {
 public:
  explicit LiteralExpr(Value value) : value_(std::move(value)) {}
  Value eval(EvalContext&) const override { return value_; }
  std::string unparse() const override { return value_.unparse(); }
  const Value* literal() const override { return &value_; }
  const Value& value() const { return value_; }

 private:
  Value value_;
};

class AttrRefExpr final : public Expr {
 public:
  AttrRefExpr(std::string name, AttrScope scope)
      : name_(std::move(name)), scope_(scope) {}
  Value eval(EvalContext& ctx) const override;
  std::string unparse() const override;
  const std::string& name() const { return name_; }
  AttrScope scope() const { return scope_; }

 private:
  std::string name_;
  AttrScope scope_;
};

class UnaryExpr final : public Expr {
 public:
  UnaryExpr(UnaryOp op, ExprPtr operand)
      : op_(op), operand_(std::move(operand)) {}
  Value eval(EvalContext& ctx) const override;
  std::string unparse() const override;

 private:
  UnaryOp op_;
  ExprPtr operand_;
};

class BinaryExpr final : public Expr {
 public:
  BinaryExpr(BinaryOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}
  Value eval(EvalContext& ctx) const override;
  std::string unparse() const override;
  BinaryOp op() const { return op_; }
  const ExprPtr& lhs() const { return lhs_; }
  const ExprPtr& rhs() const { return rhs_; }

 private:
  BinaryOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

class TernaryExpr final : public Expr {
 public:
  TernaryExpr(ExprPtr cond, ExprPtr then_expr, ExprPtr else_expr)
      : cond_(std::move(cond)),
        then_(std::move(then_expr)),
        else_(std::move(else_expr)) {}
  Value eval(EvalContext& ctx) const override;
  std::string unparse() const override;

 private:
  ExprPtr cond_;
  ExprPtr then_;
  ExprPtr else_;
};

class CallExpr final : public Expr {
 public:
  CallExpr(std::string name, std::vector<ExprPtr> args)
      : name_(std::move(name)), args_(std::move(args)) {}
  Value eval(EvalContext& ctx) const override;
  std::string unparse() const override;
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::vector<ExprPtr> args_;
};

class ListExpr final : public Expr {
 public:
  explicit ListExpr(std::vector<ExprPtr> items) : items_(std::move(items)) {}
  Value eval(EvalContext& ctx) const override;
  std::string unparse() const override;

 private:
  std::vector<ExprPtr> items_;
};

/// The fuzzy comparison the <, <=, >, >=, ==, != operators apply once both
/// operands are plain values: numbers compare numerically (bool coerces),
/// strings case-insensitively, anything else is ERROR. Exposed so the
/// Negotiator's pre-filter can evaluate extracted Requirements conjuncts
/// against pre-resolved slot attributes with byte-identical semantics.
Value eval_fuzzy_compare(BinaryOp op, const Value& a, const Value& b);

// --- builtin function registry (implemented in builtins.cpp) ---
using Builtin = Value (*)(const std::vector<Value>& args, EvalContext& ctx);

/// Case-insensitive lookup; nullptr if unknown (the call then yields ERROR).
Builtin find_builtin(const std::string& name);

/// Names of all registered builtins (for docs/tests).
std::vector<std::string> builtin_names();

}  // namespace condorg::classad
