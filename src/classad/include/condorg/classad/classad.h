// ClassAd record type and bilateral matchmaking.
//
// A ClassAd is a set of (case-insensitively named) attributes, each bound to
// an expression. Resources advertise offer ads, jobs advertise request ads;
// the Matchmaker (Negotiator) pairs them when each ad's Requirements
// evaluates to true against the other, and ranks candidates by Rank.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "condorg/classad/expr.h"
#include "condorg/classad/value.h"

namespace condorg::classad {

/// Case-insensitive attribute-name ordering.
struct AttrNameLess {
  bool operator()(const std::string& a, const std::string& b) const;
};

class ClassAd {
 public:
  ClassAd() = default;

  // --- attribute insertion ---
  void insert(const std::string& name, ExprPtr expr);
  /// Parse `expr_text` and insert; throws ParseError on bad syntax.
  void insert_expr(const std::string& name, const std::string& expr_text);
  void insert_int(const std::string& name, std::int64_t value);
  void insert_real(const std::string& name, double value);
  void insert_bool(const std::string& name, bool value);
  void insert_string(const std::string& name, std::string value);

  bool erase(const std::string& name);
  bool contains(const std::string& name) const;
  std::size_t size() const { return attrs_.size(); }
  bool empty() const { return attrs_.empty(); }

  /// The bound expression, or nullptr.
  ExprPtr lookup(const std::string& name) const;

  // --- evaluation ---
  /// Evaluate attribute `name` with MY = this ad, TARGET = `target`.
  Value eval(const std::string& name, const ClassAd* target = nullptr) const;

  /// Typed evaluation helpers; nullopt when missing / wrong type.
  std::optional<std::int64_t> eval_int(const std::string& name,
                                       const ClassAd* target = nullptr) const;
  std::optional<double> eval_real(const std::string& name,
                                  const ClassAd* target = nullptr) const;
  std::optional<bool> eval_bool(const std::string& name,
                                const ClassAd* target = nullptr) const;
  std::optional<std::string> eval_string(
      const std::string& name, const ClassAd* target = nullptr) const;

  /// Attribute names in their canonical (first-inserted) spelling, sorted
  /// case-insensitively.
  std::vector<std::string> names() const;

  /// Render as "[a = 1; b = \"x\"]".
  std::string unparse() const;

  /// Merge `other`'s attributes into this ad (other wins on conflict).
  void update(const ClassAd& other);

 private:
  struct Attr {
    std::string name;  // canonical spelling
    ExprPtr expr;
  };
  std::map<std::string, Attr, AttrNameLess> attrs_;
};

// --- matchmaking ---

/// True iff `left.Requirements` is true with TARGET = right AND
/// `right.Requirements` is true with TARGET = left. A missing Requirements
/// attribute counts as true (matches anything), mirroring Condor.
bool symmetric_match(const ClassAd& left, const ClassAd& right);

/// Evaluate `ad.Rank` against `target`; UNDEFINED or non-numeric → 0.0.
double eval_rank(const ClassAd& ad, const ClassAd& target);

}  // namespace condorg::classad
