// ClassAd record type and bilateral matchmaking.
//
// A ClassAd is a set of (case-insensitively named) attributes, each bound to
// an expression. Resources advertise offer ads, jobs advertise request ads;
// the Matchmaker (Negotiator) pairs them when each ad's Requirements
// evaluates to true against the other, and ranks candidates by Rank.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "condorg/classad/expr.h"
#include "condorg/classad/value.h"

namespace condorg::classad {

/// Case-insensitive attribute-name ordering (used for the canonical sorted
/// order of names()/unparse()).
struct AttrNameLess {
  bool operator()(std::string_view a, std::string_view b) const;
};

/// Case-folding FNV-1a hash + equality so attribute lookups are O(1) against
/// the canonical (first-inserted) spelling without lowercasing a temporary
/// per lookup. Transparent: heterogeneous find() takes string_view.
struct AttrNameHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const;
};
struct AttrNameEq {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const;
};

class ClassAd {
 public:
  ClassAd() = default;

  // --- attribute insertion ---
  void insert(const std::string& name, ExprPtr expr);
  /// Parse `expr_text` and insert; throws ParseError on bad syntax.
  void insert_expr(const std::string& name, const std::string& expr_text);
  void insert_int(const std::string& name, std::int64_t value);
  void insert_real(const std::string& name, double value);
  void insert_bool(const std::string& name, bool value);
  void insert_string(const std::string& name, std::string value);

  bool erase(const std::string& name);
  bool contains(const std::string& name) const;
  std::size_t size() const { return attrs_.size(); }
  bool empty() const { return attrs_.empty(); }

  /// The bound expression, or nullptr.
  ExprPtr lookup(std::string_view name) const;

  /// Cached resolutions of the two matchmaking hot-path attributes; kept in
  /// sync by insert/erase/update so symmetric_match and eval_rank skip the
  /// name lookup entirely. Null when the attribute is absent.
  const ExprPtr& requirements() const { return requirements_; }
  const ExprPtr& rank() const { return rank_; }

  // --- evaluation ---
  /// Evaluate attribute `name` with MY = this ad, TARGET = `target`.
  Value eval(const std::string& name, const ClassAd* target = nullptr) const;

  /// Typed evaluation helpers; nullopt when missing / wrong type.
  std::optional<std::int64_t> eval_int(const std::string& name,
                                       const ClassAd* target = nullptr) const;
  std::optional<double> eval_real(const std::string& name,
                                  const ClassAd* target = nullptr) const;
  std::optional<bool> eval_bool(const std::string& name,
                                const ClassAd* target = nullptr) const;
  std::optional<std::string> eval_string(
      const std::string& name, const ClassAd* target = nullptr) const;

  /// Attribute names in their canonical (first-inserted) spelling, sorted
  /// case-insensitively.
  std::vector<std::string> names() const;

  /// Render as "[a = 1; b = \"x\"]".
  std::string unparse() const;

  /// Merge `other`'s attributes into this ad (other wins on conflict).
  void update(const ClassAd& other);

 private:
  void refresh_hot_attr(std::string_view name, const ExprPtr& expr);

  // Keyed by the canonical (first-inserted) spelling; hash/equality fold
  // case, so "MEMORY" finds "Memory" in one probe instead of a tolower-walk
  // per tree level of a std::map.
  std::unordered_map<std::string, ExprPtr, AttrNameHash, AttrNameEq> attrs_;
  ExprPtr requirements_;  // == lookup("Requirements"), kept in sync
  ExprPtr rank_;          // == lookup("Rank"), kept in sync
};

// --- matchmaking ---

/// True iff `left.Requirements` is true with TARGET = right AND
/// `right.Requirements` is true with TARGET = left. A missing Requirements
/// attribute counts as true (matches anything), mirroring Condor.
bool symmetric_match(const ClassAd& left, const ClassAd& right);

/// One side of symmetric_match: true iff `my.Requirements` evaluates to true
/// with TARGET = `target` (missing Requirements counts as true). Exposed so
/// the negotiator's prefilter can fall back per side instead of re-running
/// the side it already proved.
bool half_match(const ClassAd& my, const ClassAd& target);

/// Evaluate `ad.Rank` against `target`; UNDEFINED or non-numeric → 0.0.
double eval_rank(const ClassAd& ad, const ClassAd& target);

}  // namespace condorg::classad
