// Recursive-descent parser for ClassAd expressions and ads.
//
// Grammar (precedence low to high):
//   expr     := ternary
//   ternary  := or ('?' expr ':' expr)?
//   or       := and ('||' and)*
//   and      := cmp ('&&' cmp)*
//   cmp      := add (('<'|'<='|'>'|'>='|'=='|'!='|'=?='|'=!=') add)*
//   add      := mul (('+'|'-') mul)*
//   mul      := unary (('*'|'/'|'%') unary)*
//   unary    := ('-'|'+'|'!') unary | primary
//   primary  := literal | ident | scope '.' ident | ident '(' args ')'
//             | '(' expr ')' | '{' exprs '}' | '[' ad ']'
// Identifiers true/false/undefined/error are literals (case-insensitive);
// MY/TARGET (and my/target) are scopes.
//
// An *ad* is '[' (name '=' expr ';'?)* ']' or a bare sequence of
// 'name = expr' lines (submit-file style).
#pragma once

#include <stdexcept>
#include <string>

#include "condorg/classad/classad.h"
#include "condorg/classad/expr.h"

namespace condorg::classad {

class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parse a single expression; trailing input is an error.
ExprPtr parse_expr(const std::string& input);

/// Parse a full ad: either "[a = 1; b = 2]" or newline-separated
/// "a = 1" assignments. Throws ParseError.
ClassAd parse_ad(const std::string& input);

}  // namespace condorg::classad
