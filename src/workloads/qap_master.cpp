#include "condorg/workloads/qap_master.h"

#include <numeric>

namespace condorg::workloads {

QapMaster::QapMaster(QapInstance instance, int branch_depth)
    : instance_(std::move(instance)) {
  // Greedy initial incumbent: identity permutation (always feasible).
  std::vector<int> identity(instance_.n);
  std::iota(identity.begin(), identity.end(), 0);
  incumbent_ = instance_.evaluate(identity);
  best_perm_ = identity;

  std::vector<int> prefix;
  expand(prefix, branch_depth);
  pool_.reserve(units_.size());
  for (std::uint64_t i = 0; i < units_.size(); ++i) pool_.push_back(i);
}

void QapMaster::expand(std::vector<int>& prefix, int remaining_depth) {
  if (remaining_depth == 0) {
    // Pre-prune hopeless prefixes so the unit count reflects real work.
    if (gilmore_lawler_bound(instance_, prefix, &laps_) < incumbent_) {
      QapWorkUnit unit;
      unit.id = units_.size();
      unit.prefix = prefix;
      units_.push_back(std::move(unit));
    }
    return;
  }
  for (int loc = 0; loc < instance_.n; ++loc) {
    bool used = false;
    for (const int existing : prefix) {
      if (existing == loc) {
        used = true;
        break;
      }
    }
    if (used) continue;
    prefix.push_back(loc);
    expand(prefix, remaining_depth - 1);
    prefix.pop_back();
  }
}

std::optional<QapWorkUnit> QapMaster::next_unit() {
  if (pool_.empty()) return std::nullopt;
  const std::uint64_t index = pool_.back();
  pool_.pop_back();
  outstanding_[index] = true;
  QapWorkUnit unit = units_[index];
  unit.upper_bound = incumbent_;  // freshest bound at hand-out time
  return unit;
}

void QapMaster::complete_unit(std::uint64_t id, const QapResult& result) {
  const auto it = outstanding_.find(id);
  if (it == outstanding_.end()) return;  // duplicate completion
  outstanding_.erase(it);
  ++completed_;
  laps_ += result.laps_solved;
  nodes_ += result.nodes;
  if (!result.best_perm.empty() && result.best_cost < incumbent_) {
    incumbent_ = result.best_cost;
    best_perm_ = result.best_perm;
  }
}

void QapMaster::fail_unit(std::uint64_t id) {
  const auto it = outstanding_.find(id);
  if (it == outstanding_.end()) return;
  outstanding_.erase(it);
  pool_.push_back(id);
}

}  // namespace condorg::workloads
