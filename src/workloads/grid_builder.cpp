#include "condorg/workloads/grid_builder.h"

#include "condorg/batch/fair_share_scheduler.h"
#include "condorg/batch/fifo_scheduler.h"

namespace condorg::workloads {

GridTestbed::GridTestbed(std::uint64_t seed) : world_(seed) {}

sim::Host& GridTestbed::add_submit_host(const std::string& name) {
  return world_.add_host(name);
}

Site& GridTestbed::add_site(SiteSpec spec) {
  auto site = std::make_unique<Site>();
  site->spec = spec;
  site->frontend = &world_.add_host(spec.name);
  site->cluster = &world_.add_host(spec.name + ".cluster");

  switch (spec.kind) {
    case SiteKind::kPbs:
    case SiteKind::kCondorPool:
      // The Condor-pool *batch interface* behaves like a FIFO queue from
      // GRAM's point of view; pool semantics (eviction, matchmaking) enter
      // through glide-ins, which run their own startds.
      site->scheduler = std::make_unique<batch::FifoScheduler>(
          world_.sim(), spec.name, spec.cpus);
      break;
    case SiteKind::kLsf:
      site->scheduler = std::make_unique<batch::FairShareScheduler>(
          world_.sim(), spec.name, spec.cpus);
      break;
  }

  spec.gatekeeper.max_walltime = spec.max_walltime;
  site->gatekeeper = std::make_unique<gram::Gatekeeper>(
      *site->frontend, world_.net(), *site->scheduler, spec.gatekeeper);

  if (spec.background_load) {
    site->background = std::make_unique<batch::BackgroundLoad>(
        world_.sim(), *site->scheduler, spec.background,
        world_.sim().make_rng("bg." + spec.name));
    site->background->start();
  }

  sites_.push_back(std::move(site));
  Site& ref = *sites_.back();
  if (giis_) attach_provider(ref);
  return ref;
}

mds::GiisServer& GridTestbed::enable_mds(const std::string& host_name,
                                         double period_seconds) {
  if (!giis_) {
    mds_period_ = period_seconds;
    giis_ = std::make_unique<mds::GiisServer>(world_.add_host(host_name),
                                              world_.net());
    for (auto& site : sites_) attach_provider(*site);
  }
  return *giis_;
}

void GridTestbed::attach_provider(Site& site) {
  if (site.provider) return;
  mds::ProviderOptions options;
  options.period_seconds = mds_period_;
  batch::LocalScheduler* scheduler = site.scheduler.get();
  const std::string name = site.spec.name;
  const double max_walltime = site.spec.max_walltime;
  site.provider = std::make_unique<mds::InfoProvider>(
      *site.frontend, world_.net(), name,
      [scheduler, name, max_walltime] {
        classad::ClassAd ad;
        ad.insert_string("Name", name);
        ad.insert_string("GatekeeperHost", name);
        ad.insert_string("Arch", "X86_64");
        ad.insert_int("Cpus", scheduler->total_cpus());
        ad.insert_int("FreeCpus", scheduler->free_cpus());
        ad.insert_int("QueueLength",
                      static_cast<std::int64_t>(scheduler->queue_length()));
        ad.insert_real("MaxWalltime", max_walltime);
        return ad;
      },
      options);
  site.provider->add_directory(giis_->address());
  site.provider->start();
}

std::vector<sim::Address> GridTestbed::gatekeepers() const {
  std::vector<sim::Address> out;
  out.reserve(sites_.size());
  for (const auto& site : sites_) out.push_back(site->gatekeeper_address());
  return out;
}

int GridTestbed::total_cpus() const {
  int total = 0;
  for (const auto& site : sites_) total += site->spec.cpus;
  return total;
}

}  // namespace condorg::workloads
