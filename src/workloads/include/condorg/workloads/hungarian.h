// Linear Assignment Problem solver (Hungarian algorithm, O(n^3)).
//
// The paper's flagship computation solved "more than 540 billion Linear
// Assignment Problems" as the bounding step of a branch-and-bound QAP
// solver. This is that bounding step: given an n x n cost matrix, find the
// minimum-cost perfect matching of rows to columns.
#pragma once

#include <cstdint>
#include <vector>

namespace condorg::workloads {

using CostMatrix = std::vector<std::vector<std::int64_t>>;

struct AssignmentResult {
  std::int64_t cost = 0;
  /// assignment[row] = column matched to that row.
  std::vector<int> assignment;
};

/// Solve min-cost assignment; `cost` must be square and non-empty.
AssignmentResult solve_assignment(const CostMatrix& cost);

/// Lower-bound-only variant (identical cost, skips building the matching).
std::int64_t assignment_cost(const CostMatrix& cost);

}  // namespace condorg::workloads
