// G-Cat: streaming partial output to mass storage (§6, third experience).
//
// "G-Cat hides network performance variations from Gaussian by using local
// scratch storage as a buffer for Gaussian's output, rather than sending
// the output directly over the network. Users can view the output as it is
// received at MSS."
//
// Two writers are provided for the ablation:
//   * GCat       — the paper's design: the producing job appends to a local
//     scratch buffer and never blocks; a background flusher ships buffered
//     chunks to the MSS sequentially, riding out slow or broken links.
//   * DirectWriter — the baseline: each output record is written through to
//     the MSS synchronously; while the network is slow the *job* stalls.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "condorg/gass/client.h"
#include "condorg/sim/host.h"
#include "condorg/util/stats.h"

namespace condorg::workloads {

struct GCatOptions {
  std::uint64_t chunk_bytes = 4 << 20;  // flush threshold
  double flush_interval = 60.0;         // also flush on a timer
  double rpc_timeout = 120.0;
  double retry_delay = 30.0;
};

class GCat {
 public:
  GCat(sim::Host& host, sim::Network& network, sim::Address mss,
       std::string remote_path, GCatOptions options = {});

  /// The job produced `bytes` of output (content appended to the local
  /// scratch buffer). NEVER blocks the caller.
  void on_output(const std::string& content, std::uint64_t bytes);

  /// The job finished; flush everything remaining. `done` fires when the
  /// MSS holds the complete file.
  void finish(std::function<void()> done);

  // --- observability for the E3 bench ---
  std::uint64_t bytes_produced() const { return produced_; }
  std::uint64_t bytes_acked() const { return acked_; }
  /// Output visible at the MSS lags production by this many bytes.
  std::uint64_t staleness_bytes() const { return produced_ - acked_; }
  std::uint64_t chunks_sent() const { return chunks_; }
  std::uint64_t peak_buffer_bytes() const { return peak_buffer_; }
  util::Summary& staleness_samples() { return staleness_; }

 private:
  void maybe_flush();
  void send_chunk();

  sim::Host& host_;
  gass::FileClient client_;
  sim::Address mss_;
  std::string remote_path_;
  GCatOptions options_;
  std::string buffer_;
  std::uint64_t buffer_bytes_ = 0;
  bool inflight_ = false;
  bool finished_ = false;
  std::function<void()> done_;
  std::uint64_t produced_ = 0;
  std::uint64_t acked_ = 0;
  std::uint64_t chunks_ = 0;
  std::uint64_t peak_buffer_ = 0;
  util::Summary staleness_;
};

/// Synchronous baseline: on_output delivers the record to the MSS and
/// reports, via the callback, how long the producing job was blocked.
class DirectWriter {
 public:
  DirectWriter(sim::Host& host, sim::Network& network, sim::Address mss,
               std::string remote_path, double rpc_timeout = 120.0,
               double retry_delay = 30.0);

  /// Write a record; `unblocked` fires when the write is durable at the
  /// MSS — until then the producing job is stalled.
  void write(const std::string& content, std::uint64_t bytes,
             std::function<void()> unblocked);

  std::uint64_t bytes_acked() const { return acked_; }
  double total_stall_seconds() const { return stall_; }

 private:
  sim::Host& host_;
  gass::FileClient client_;
  sim::Address mss_;
  std::string remote_path_;
  double rpc_timeout_;
  double retry_delay_;
  std::uint64_t acked_ = 0;
  std::uint64_t seq_ = 0;
  double stall_ = 0;
};

}  // namespace condorg::workloads
