// Master side of the master-worker QAP computation (§6, first experience).
//
// "Each worker in this Master-Worker application was implemented as an
// independent Condor job that used Remote I/O services to communicate with
// the Master." The master enumerates the branch-and-bound frontier at a
// fixed depth; each frontier prefix is an independent work unit a grid
// worker solves to completion, reporting its subtree optimum and the
// number of LAPs it solved. The master maintains the incumbent, which
// tightens the bound handed to later units.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "condorg/workloads/qap.h"

namespace condorg::workloads {

struct QapWorkUnit {
  std::uint64_t id = 0;
  std::vector<int> prefix;
  std::int64_t upper_bound = 0;  // incumbent at hand-out time
};

class QapMaster {
 public:
  /// Frontier at `branch_depth` levels (units = n!/(n-depth)! prefixes,
  /// pre-pruned with the GL bound against a greedy initial incumbent).
  QapMaster(QapInstance instance, int branch_depth);

  /// Next unassigned unit (re-issues units whose worker failed if
  /// `fail_unit` was called). nullopt when all are handed out.
  std::optional<QapWorkUnit> next_unit();

  /// Worker finished a unit.
  void complete_unit(std::uint64_t id, const QapResult& result);

  /// Worker lost (evicted without checkpoint, site failed): unit returns
  /// to the pool.
  void fail_unit(std::uint64_t id);

  bool done() const { return completed_ == units_.size(); }
  std::size_t total_units() const { return units_.size(); }
  std::size_t completed_units() const { return completed_; }
  std::int64_t incumbent() const { return incumbent_; }
  const std::vector<int>& best_perm() const { return best_perm_; }
  std::uint64_t total_laps() const { return laps_; }
  std::uint64_t total_nodes() const { return nodes_; }
  const QapInstance& instance() const { return instance_; }

 private:
  void expand(std::vector<int>& prefix, int remaining_depth);

  QapInstance instance_;
  std::vector<QapWorkUnit> units_;
  std::vector<std::uint64_t> pool_;  // indices not yet handed out
  std::map<std::uint64_t, bool> outstanding_;
  std::size_t completed_ = 0;
  std::int64_t incumbent_ = 0;
  std::vector<int> best_perm_;
  std::uint64_t laps_ = 0;
  std::uint64_t nodes_ = 0;
};

}  // namespace condorg::workloads
