// Quadratic Assignment Problem: branch-and-bound with Gilmore-Lawler
// bounds, decomposable into independent subtrees for master-worker grid
// execution (the Anstreicher/Brixius/Goux/Linderoth computation of §6).
//
// minimize  sum_{i,k} flow[i][k] * dist[perm[i]][perm[k]]
// over permutations `perm` of {0..n-1} (facility i placed at perm[i]).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "condorg/util/rng.h"

namespace condorg::workloads {

struct QapInstance {
  int n = 0;
  std::vector<std::vector<std::int64_t>> flow;
  std::vector<std::vector<std::int64_t>> dist;

  /// Deterministic pseudo-random instance (symmetric, zero diagonal) —
  /// Nugent-flavoured test data.
  static QapInstance random(int n, util::Rng& rng, std::int64_t max_entry = 9);

  std::int64_t evaluate(const std::vector<int>& perm) const;
};

struct QapResult {
  std::int64_t best_cost = 0;
  std::vector<int> best_perm;   // empty if the subtree beat nothing
  std::uint64_t nodes = 0;      // B&B nodes explored
  std::uint64_t laps_solved = 0;  // Hungarian calls (the paper's headline)
};

/// Gilmore-Lawler lower bound for a partial assignment (facilities
/// 0..depth-1 placed at prefix[0..depth-1]).
std::int64_t gilmore_lawler_bound(const QapInstance& instance,
                                  const std::vector<int>& prefix,
                                  std::uint64_t* laps_counter = nullptr);

/// Exhaustively solve the subtree under `prefix`; prunes with the GL bound
/// against `upper_bound` (pass the incumbent; defaults to +inf).
QapResult solve_qap_subtree(
    const QapInstance& instance, const std::vector<int>& prefix,
    std::int64_t upper_bound = std::numeric_limits<std::int64_t>::max());

/// Convenience: solve the whole instance.
QapResult solve_qap(const QapInstance& instance);

/// Brute force (for testing small n).
QapResult solve_qap_bruteforce(const QapInstance& instance);

}  // namespace condorg::workloads
