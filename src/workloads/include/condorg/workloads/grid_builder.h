// Testbed construction: multi-site grids of the shape the paper ran on
// ("eight Condor pools, one cluster managed by PBS, and one supercomputer
// managed by LSF"). Shared by tests, examples, and the benchmark harness.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "condorg/batch/background_load.h"
#include "condorg/batch/local_scheduler.h"
#include "condorg/gram/gatekeeper.h"
#include "condorg/mds/giis.h"
#include "condorg/mds/provider.h"
#include "condorg/sim/world.h"

namespace condorg::workloads {

enum class SiteKind { kPbs, kLsf, kCondorPool };

struct SiteSpec {
  std::string name;  // becomes the gatekeeper host name
  SiteKind kind = SiteKind::kPbs;
  int cpus = 16;
  double max_walltime = 1e18;
  /// Optional competing local load.
  bool background_load = false;
  batch::BackgroundLoadOptions background;
  gram::GatekeeperOptions gatekeeper;
};

/// One constructed site: separate failure domains for the front-end (the
/// Gatekeeper/JobManager machine) and the compute cluster.
struct Site {
  SiteSpec spec;
  sim::Host* frontend = nullptr;
  sim::Host* cluster = nullptr;
  std::unique_ptr<batch::LocalScheduler> scheduler;
  std::unique_ptr<gram::Gatekeeper> gatekeeper;
  std::unique_ptr<batch::BackgroundLoad> background;
  std::unique_ptr<mds::InfoProvider> provider;

  sim::Address gatekeeper_address() const {
    return {spec.name, gram::kGatekeeperService};
  }
};

class GridTestbed {
 public:
  explicit GridTestbed(std::uint64_t seed = 1);

  sim::World& world() { return world_; }

  Site& add_site(SiteSpec spec);

  /// Add a submit machine (host only; the caller builds the agent on it).
  sim::Host& add_submit_host(const std::string& name);

  /// Stand up an MDS directory on its own host and make every current and
  /// future site publish resource ads (FreeCpus, QueueLength, Arch,
  /// GatekeeperHost) to it.
  mds::GiisServer& enable_mds(const std::string& host_name,
                              double period_seconds = 120.0);

  const std::vector<std::unique_ptr<Site>>& sites() const { return sites_; }
  Site& site(std::size_t index) { return *sites_[index]; }
  std::vector<sim::Address> gatekeepers() const;

  /// Total CPUs across all sites.
  int total_cpus() const;

 private:
  void attach_provider(Site& site);

  sim::World world_;
  std::vector<std::unique_ptr<Site>> sites_;
  std::unique_ptr<mds::GiisServer> giis_;
  double mds_period_ = 120.0;
};

}  // namespace condorg::workloads
