// Bounded scenarios for the schedule-space model checker.
//
// Each scenario is a miniature, fixed-seed version of an example workload:
// it builds a fresh grid, attaches the explorer's oracle as the kernel's
// ScheduleController, arms the full StandardAuditor at period 1 (checks
// after every event), runs to a fixed horizon, and returns the findings.
// Scenarios check *safety* (exactly-once submission, conservation, records
// on disk) — a schedule in which a job does not finish before the horizon
// is legal; one that runs a job twice is not.
#pragma once

#include <string>
#include <vector>

#include "condorg/sim/explorer.h"

namespace condorg::workloads {

/// The scenario registered under `name`; throws std::invalid_argument for
/// an unknown name (see explore_scenario_names()).
sim::Explorer::Scenario make_explore_scenario(const std::string& name);

/// Names accepted by make_explore_scenario, in listing order:
///   "quickstart"  — one 2-cpu site, three short grid jobs, healthy links;
///                   exercises the two-phase submit/commit handshake.
///   "fault_drill" — two sites, four jobs, plus scripted faults: an F1
///                   JobManager kill, an F2 front-end crash, and an F4
///                   partition window, on top of the oracle's own
///                   crash-point injection.
///   "portal_storm" — two users submitting through one Portal into
///                   per-user PoolRunners, matched by the delta
///                   PoolNegotiator; the oracle crashes the portal and
///                   runners at their admission crash points, and the
///                   invariant is exactly-once admission (no user's queue
///                   ever exceeds what that user submitted).
std::vector<std::string> explore_scenario_names();

}  // namespace condorg::workloads
