// CMS-style event simulation / reconstruction workload (§6, second
// experience): "100 simulation jobs ... Each of these jobs generates 500
// events", all events shipped via GridFTP to a repository, then one
// reconstruction job consumes them.
//
// Events are synthetic but *verifiable*: each event digest is derived
// deterministically from (run_seed, job_index, event_index), a simulation
// job's output file content is the fold of its event digests, and the
// reconstruction digest folds all job digests in order. Any lost,
// duplicated, or reordered event changes the final digest, so the pipeline
// can assert end-to-end exactly-once delivery.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace condorg::workloads {

struct CmsConfig {
  std::uint64_t run_seed = 2001;
  int simulation_jobs = 100;
  int events_per_job = 500;
  std::uint64_t bytes_per_event = 1 << 20;  // 1 MB/event of simulated data
  double seconds_per_event_sim = 25.0;      // simulation cost
  double seconds_per_event_reco = 10.0;     // reconstruction cost
};

/// Digest of one simulated event.
std::uint64_t cms_event_digest(const CmsConfig& config, int job_index,
                               int event_index);

/// Output-file content of one simulation job (fold of its event digests,
/// rendered as hex so it doubles as the GASS file body).
std::string cms_job_output(const CmsConfig& config, int job_index);

/// Digest of a simulation job's output file.
std::uint64_t cms_job_digest(const CmsConfig& config, int job_index);

/// The reconstruction result over all jobs (fold of job digests). The
/// ground truth a run must reproduce.
std::uint64_t cms_reconstruction_digest(const CmsConfig& config);

/// Reconstruction computed from actual transferred file contents; equals
/// cms_reconstruction_digest(config) iff every job's data arrived intact,
/// exactly once, in job order.
std::uint64_t cms_reconstruct_from_files(
    std::uint64_t run_seed, const std::vector<std::string>& job_files);

/// Declared size of one simulation job's output file.
std::uint64_t cms_job_output_bytes(const CmsConfig& config);

}  // namespace condorg::workloads
