#include "condorg/workloads/cms_pipeline.h"

#include "condorg/util/rng.h"
#include "condorg/util/strings.h"

namespace condorg::workloads {

std::uint64_t cms_event_digest(const CmsConfig& config, int job_index,
                               int event_index) {
  std::uint64_t h = util::fnv1a_mix(config.run_seed,
                                    static_cast<std::uint64_t>(job_index));
  h = util::fnv1a_mix(h, static_cast<std::uint64_t>(event_index));
  return util::fnv1a_mix(h, 0xC0115E0C0115E777ull);
}

std::string cms_job_output(const CmsConfig& config, int job_index) {
  std::string out;
  out.reserve(static_cast<std::size_t>(config.events_per_job) * 17);
  for (int e = 0; e < config.events_per_job; ++e) {
    out += util::format("%016llx\n",
                        static_cast<unsigned long long>(
                            cms_event_digest(config, job_index, e)));
  }
  return out;
}

std::uint64_t cms_job_digest(const CmsConfig& config, int job_index) {
  return util::fnv1a(cms_job_output(config, job_index));
}

std::uint64_t cms_reconstruction_digest(const CmsConfig& config) {
  std::uint64_t h = config.run_seed;
  for (int j = 0; j < config.simulation_jobs; ++j) {
    h = util::fnv1a_mix(h, cms_job_digest(config, j));
  }
  return h;
}

std::uint64_t cms_reconstruct_from_files(
    std::uint64_t run_seed, const std::vector<std::string>& job_files) {
  std::uint64_t h = run_seed;
  for (const std::string& content : job_files) {
    h = util::fnv1a_mix(h, util::fnv1a(content));
  }
  return h;
}

std::uint64_t cms_job_output_bytes(const CmsConfig& config) {
  return static_cast<std::uint64_t>(config.events_per_job) *
         config.bytes_per_event;
}

}  // namespace condorg::workloads
