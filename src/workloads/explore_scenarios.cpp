#include "condorg/workloads/explore_scenarios.h"

#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "condorg/classad/parser.h"
#include "condorg/condor/collector.h"
#include "condorg/condor/pool_negotiator.h"
#include "condorg/condor/startd.h"
#include "condorg/core/agent.h"
#include "condorg/core/audit.h"
#include "condorg/core/broker.h"
#include "condorg/core/pool_runner.h"
#include "condorg/core/portal.h"
#include "condorg/core/portal_client.h"
#include "condorg/core/schedd.h"
#include "condorg/gram/protocol.h"
#include "condorg/sim/det.h"
#include "condorg/util/strings.h"
#include "condorg/workloads/grid_builder.h"

namespace condorg::workloads {
namespace {

// Shared scenario scaffolding: the grid shape and job mix differ per
// scenario; everything below (auditor wiring, state probe, outcome
// harvesting) is identical, and identical matters — replay equality is
// byte-for-byte over the formatted violations.
struct ExploreWorld {
  // Declared before the testbed: exploration is controller-driven and
  // must run the legacy sequential kernel whatever CONDORG_PARALLEL says
  // (set_controller rejects island mode), so the Worlds built below are
  // forced to legacy while this guard lives. Replay shares the scenario,
  // hence counterexamples stay byte-stable across environments.
  sim::World::ScopedParallelOverride force_legacy{0};
  GridTestbed testbed{/*seed=*/2001};
  std::unique_ptr<core::CondorGAgent> agent;
  std::unique_ptr<core::StandardAuditor> auditor;
  std::vector<std::uint64_t> job_ids;

  sim::Simulation& sim() { return testbed.world().sim(); }

  void start_agent(const std::string& host,
                   const core::AgentOptions& options = {}) {
    // DetSan violations are process-global; the explorer runs many
    // schedules in one process, so each run starts from a drained slate
    // and harvests its own violations in finish().
    (void)det::take_violations();
    testbed.add_submit_host(host);
    agent =
        std::make_unique<core::CondorGAgent>(testbed.world(), host, options);
    agent->set_site_chooser(core::make_static_chooser(testbed.gatekeepers()));
    agent->start();
    // Period 1: check every invariant between every pair of events, so a
    // violation is pinned to the exact dispatch that introduced it.
    auditor = std::make_unique<core::StandardAuditor>(sim(), /*period=*/1);
    auditor->attach_agent(*agent);
    for (const auto& site : testbed.sites()) {
      auditor->attach_gatekeeper(*site->gatekeeper);
    }
  }

  void submit_jobs(int count, double runtime_seconds) {
    for (int i = 0; i < count; ++i) {
      core::JobDescription job;
      job.universe = core::Universe::kGrid;
      job.executable = "probe";
      job.runtime_seconds = runtime_seconds + 30.0 * i;
      job.output_size = 1 << 10;
      job_ids.push_back(agent->submit(job));
    }
  }

  /// Hash of the protocol-relevant world state (not its history): job
  /// statuses and seqs, JobManager states, host liveness/epochs, disk
  /// record counts. Two prefixes hashing equal lead to equivalent futures,
  /// which is what lets the explorer prune.
  std::uint64_t state_hash() {
    std::uint64_t h = 0x9e3779b97f4a7c15ull;
    for (const std::uint64_t id : job_ids) {
      const auto job = agent->query(id);
      if (!job) {
        h = util::fnv1a_mix(h, ~0ull);
        continue;
      }
      h = util::fnv1a_mix(h, static_cast<std::uint64_t>(job->status));
      h = util::fnv1a_mix(h, job->gram_seq);
      h = util::fnv1a_mix(h, util::fnv1a(job->gram_contact));
      h = util::fnv1a_mix(h, static_cast<std::uint64_t>(job->attempts));
    }
    for (const auto& site : testbed.sites()) {
      h = util::fnv1a_mix(h, site->gatekeeper->jobmanager_count());
      site->gatekeeper->for_each_jobmanager([&](const gram::JobManager& jm) {
        h = util::fnv1a_mix(h, util::fnv1a(jm.contact()));
        h = util::fnv1a_mix(h, static_cast<std::uint64_t>(jm.state()));
        h = util::fnv1a_mix(h, (jm.committed() ? 2u : 0u) |
                                   (jm.process_alive() ? 1u : 0u));
      });
      h = util::fnv1a_mix(h, site->frontend->epoch());
      h = util::fnv1a_mix(h, site->frontend->alive() ? 1 : 0);
      h = util::fnv1a_mix(h, site->frontend->disk().size());
    }
    sim::Host& submit = testbed.world().host(submit_host_name);
    h = util::fnv1a_mix(h, submit.epoch());
    h = util::fnv1a_mix(h, submit.alive() ? 1 : 0);
    h = util::fnv1a_mix(h, submit.disk().size());
    return h;
  }

  sim::RunOutcome finish(double horizon) {
    sim().run_until(horizon);
    sim().set_controller(nullptr);
    sim::RunOutcome out;
    out.trace_digest = sim().trace_digest();
    out.dispatched = sim().dispatched();
    for (const auto& v : auditor->auditor().violations()) {
      out.violations.push_back(util::format("t=%.3f %s: %s", v.when,
                                            v.check.c_str(),
                                            v.detail.c_str()));
    }
    // DetSan ownership violations count as audit failures: the formatted
    // line is deterministic (owner clock + host names), so a violating
    // schedule replays byte-for-byte like any other counterexample.
    for (const auto& v : det::take_violations()) {
      out.violations.push_back(v.format());
    }
    return out;
  }

  std::string submit_host_name = "submit.grid";
};

sim::RunOutcome run_quickstart(sim::ScheduleOracle& oracle) {
  auto world = std::make_unique<ExploreWorld>();
  world->sim().set_controller(&oracle);

  SiteSpec site;
  site.name = "site-a.grid";
  site.kind = SiteKind::kPbs;
  site.cpus = 2;
  world->testbed.add_site(site);

  world->start_agent("submit.grid");
  oracle.set_state_probe([w = world.get()] { return w->state_hash(); });
  world->submit_jobs(/*count=*/3, /*runtime_seconds=*/120.0);

  // CONDORG_MUTATE_CROSS_HOST: seed the exact bug DetSan exists to catch —
  // an event dispatched on the site front-end reaching directly into the
  // submit host's Schedd (a cross-island direct call, invisible to the
  // auditor's protocol invariants). DetSan is armed explicitly so the
  // self-test works in any build flavour.
  if (std::getenv("CONDORG_MUTATE_CROSS_HOST") != nullptr) {
    det::set_enabled(true);
    core::CondorGAgent* agent = world->agent.get();
    world->testbed.site(0).frontend->post(60.0, [agent] {
      (void)agent->schedd().count(core::JobStatus::kIdle);
    });
  }
  return world->finish(/*horizon=*/1800.0);
}

sim::RunOutcome run_fault_drill(sim::ScheduleOracle& oracle) {
  auto world = std::make_unique<ExploreWorld>();
  world->sim().set_controller(&oracle);

  SiteSpec a;
  a.name = "site-a.grid";
  a.kind = SiteKind::kPbs;
  a.cpus = 2;
  world->testbed.add_site(a);

  SiteSpec b;
  b.name = "site-b.grid";
  b.kind = SiteKind::kLsf;
  b.cpus = 2;
  world->testbed.add_site(b);

  world->start_agent("submit.grid");
  oracle.set_state_probe([w = world.get()] { return w->state_hash(); });
  world->submit_jobs(/*count=*/4, /*runtime_seconds=*/120.0);

  // Scripted fault plan, on top of whatever the oracle injects:
  sim::Simulation& sim = world->sim();
  GridTestbed& testbed = world->testbed;
  // F1 at t=180: kill the first live JobManager at site A.
  sim.schedule_at(180.0, [&testbed] {
    gram::Gatekeeper& gk = *testbed.site(0).gatekeeper;
    std::string victim;
    gk.for_each_jobmanager([&victim](const gram::JobManager& jm) {
      if (victim.empty() && jm.process_alive() &&
          !gram::is_terminal(jm.state())) {
        victim = jm.contact();
      }
    });
    if (!victim.empty()) gk.kill_jobmanager(victim);
  });
  // F2 at t=240: site B's front-end machine reboots.
  sim.schedule_at(240.0, [&testbed] {
    testbed.site(1).frontend->crash_for(50.0);
  });
  // F4 from t=300 to t=420: the WAN to site A partitions.
  sim.schedule_at(300.0, [&testbed] {
    testbed.world().net().set_partitioned("submit.grid", "site-a.grid", true);
  });
  sim.schedule_at(420.0, [&testbed] {
    testbed.world().net().set_partitioned("submit.grid", "site-a.grid", false);
  });

  return world->finish(/*horizon=*/2400.0);
}

// Pipelined submission under a tight per-site cap: four jobs share one
// executable, so the staging cache coalesces transfers while the pipeline
// keeps at most two submits outstanding per gatekeeper. The oracle's
// crash injection (gridmanager.submit_ack et al.) must never yield a
// duplicate execution or a stuck pipeline slot.
sim::RunOutcome run_submit_storm(sim::ScheduleOracle& oracle) {
  auto world = std::make_unique<ExploreWorld>();
  world->sim().set_controller(&oracle);

  SiteSpec a;
  a.name = "site-a.grid";
  a.kind = SiteKind::kPbs;
  a.cpus = 2;
  world->testbed.add_site(a);

  SiteSpec b;
  b.name = "site-b.grid";
  b.kind = SiteKind::kLsf;
  b.cpus = 2;
  world->testbed.add_site(b);

  core::AgentOptions options;
  options.gridmanager.max_pending_per_site = 2;
  world->start_agent("submit.grid", options);
  oracle.set_state_probe([w = world.get()] { return w->state_hash(); });
  world->submit_jobs(/*count=*/4, /*runtime_seconds=*/120.0);
  return world->finish(/*horizon=*/2400.0);
}

// Portal scale-out world: two PortalClients feed one Portal, which hands
// admitted batches to per-user PoolRunners; a shared central Collector +
// delta PoolNegotiator matches the published job ads against two Startd
// slots. The oracle crashes the portal at `portal.submit_recv` (admission
// persisted, reply lost) and the runner at `portal.deliver_recv` (nothing
// persisted, redelivery expected); exactly-once admission means no user's
// Schedd ever holds more queue entries than that user submitted.
struct PortalWorld {
  // Same forced-legacy rule as ExploreWorld: controller-driven exploration
  // requires the sequential kernel, and must be declared first.
  sim::World::ScopedParallelOverride force_legacy{0};
  sim::World world{/*seed=*/2001};

  struct User {
    std::string name;
    std::uint64_t total_jobs = 0;
    sim::Host* host = nullptr;
    std::unique_ptr<core::Schedd> schedd;
    std::unique_ptr<core::PoolRunner> runner;
    std::unique_ptr<core::PortalClient> client;
  };

  sim::Host* central = nullptr;
  std::unique_ptr<condor::Collector> collector;
  std::unique_ptr<condor::PoolNegotiator> negotiator;
  std::unique_ptr<core::Portal> portal;
  std::vector<std::unique_ptr<User>> users;
  std::vector<std::unique_ptr<condor::Startd>> slots;
  std::unique_ptr<core::StandardAuditor> auditor;

  sim::Simulation& sim() { return world.sim(); }

  void build(std::uint64_t jobs_per_user) {
    (void)det::take_violations();
    central = &world.add_host("portal.grid");
    collector = std::make_unique<condor::Collector>(*central, world.net());

    condor::PoolNegotiatorOptions nopt;
    nopt.cycle_period = 5.0;
    nopt.full_sweep_every = 4;  // sweep-audit often inside the tiny horizon
    nopt.hold_timeout = 60.0;
    negotiator = std::make_unique<condor::PoolNegotiator>(
        *central, world.net(), *collector, nopt);

    core::PortalOptions popt;
    popt.max_queue_depth = 4;
    popt.flush_period = 1.0;
    popt.flush_batch = 4;
    portal = std::make_unique<core::Portal>(*central, world.net(), popt);

    for (const std::string& name : {std::string("ada"), std::string("bob")}) {
      auto user = std::make_unique<User>();
      user->name = name;
      user->total_jobs = jobs_per_user;
      user->host = &world.add_host(name + ".grid");
      user->schedd = std::make_unique<core::Schedd>(*user->host);

      core::PoolRunnerOptions ropt;
      ropt.collector = collector->address();
      ropt.advertise_period = 10.0;
      ropt.max_active = 4;
      ropt.shadow.poll_interval = 15.0;
      user->runner = std::make_unique<core::PoolRunner>(
          *user->schedd, world.net(), ropt);

      core::PortalClientOptions copt;
      copt.portal = portal->address();
      copt.deliver_to = user->runner->address();
      copt.user = name;
      copt.total_jobs = jobs_per_user;
      copt.batch_size = 1;
      copt.runtime_seconds = 30.0;
      copt.retry_backoff = 3.0;
      user->client = std::make_unique<core::PortalClient>(
          *user->host, world.net(), copt);
      users.push_back(std::move(user));
    }

    for (int i = 0; i < 2; ++i) {
      sim::Host& node = world.add_host("node-" + std::to_string(i) + ".grid");
      condor::StartdOptions sopt;
      sopt.collector = collector->address();
      sopt.advertise_period = 10.0;
      sopt.checkpoint_interval = 100.0;
      sopt.base_ad = classad::parse_ad("[Arch = \"X86_64\"; Memory = 512]");
      slots.push_back(std::make_unique<condor::Startd>(
          node, world.net(), "slot" + std::to_string(i), sopt));
    }

    auditor = std::make_unique<core::StandardAuditor>(sim(), /*period=*/1);
    for (auto& user : users) auditor->attach_schedd(*user->schedd);
    auditor->attach_pool_negotiator(*negotiator);
    // The scenario's own safety property, checked between every pair of
    // events: a duplicate admission (portal replay or redelivery slipping
    // past the persisted markers) materializes as extra Schedd queue
    // entries, since jobs in this world are only ever added by deliveries.
    auditor->auditor().add_check(
        "portal/exactly-once", [this](std::vector<std::string>& out) {
          for (const auto& user : users) {
            const std::size_t queued = user->schedd->jobs().size();
            if (queued > user->total_jobs) {
              out.push_back("user " + user->name + " submitted " +
                            std::to_string(user->total_jobs) +
                            " jobs but the queue holds " +
                            std::to_string(queued) +
                            " (duplicate admission)");
            }
          }
        });

    portal->start();
    negotiator->start();
    for (auto& user : users) {
      user->runner->start();
      user->client->start();
    }
  }

  std::uint64_t state_hash() {
    std::uint64_t h = 0x9e3779b97f4a7c15ull;
    for (const auto& user : users) {
      // lint-allow(schedd-full-scan): explorer state probe hashes the queue
      for (const auto& [id, job] : user->schedd->jobs()) {
        h = util::fnv1a_mix(h, id);
        h = util::fnv1a_mix(h, static_cast<std::uint64_t>(job.status));
      }
      h = util::fnv1a_mix(h, user->client->remaining_jobs());
      h = util::fnv1a_mix(h, user->host->epoch());
      h = util::fnv1a_mix(h, user->host->alive() ? 1 : 0);
      h = util::fnv1a_mix(h, user->host->disk().size());
    }
    h = util::fnv1a_mix(h, portal->queue_depth());
    h = util::fnv1a_mix(h, portal->jobs_admitted());
    h = util::fnv1a_mix(h, collector->change_seq());
    h = util::fnv1a_mix(h, negotiator->mirror_size());
    h = util::fnv1a_mix(h, central->epoch());
    h = util::fnv1a_mix(h, central->alive() ? 1 : 0);
    h = util::fnv1a_mix(h, central->disk().size());
    return h;
  }

  sim::RunOutcome finish(double horizon) {
    sim().run_until(horizon);
    sim().set_controller(nullptr);
    sim::RunOutcome out;
    out.trace_digest = sim().trace_digest();
    out.dispatched = sim().dispatched();
    for (const auto& v : auditor->auditor().violations()) {
      out.violations.push_back(util::format("t=%.3f %s: %s", v.when,
                                            v.check.c_str(),
                                            v.detail.c_str()));
    }
    for (const auto& v : det::take_violations()) {
      out.violations.push_back(v.format());
    }
    return out;
  }
};

sim::RunOutcome run_portal_storm(sim::ScheduleOracle& oracle) {
  auto world = std::make_unique<PortalWorld>();
  world->sim().set_controller(&oracle);
  world->build(/*jobs_per_user=*/2);
  oracle.set_state_probe([w = world.get()] { return w->state_hash(); });
  return world->finish(/*horizon=*/900.0);
}

}  // namespace

sim::Explorer::Scenario make_explore_scenario(const std::string& name) {
  if (name == "quickstart") return run_quickstart;
  if (name == "fault_drill") return run_fault_drill;
  if (name == "submit_storm") return run_submit_storm;
  if (name == "portal_storm") return run_portal_storm;
  throw std::invalid_argument("unknown explore scenario: " + name);
}

std::vector<std::string> explore_scenario_names() {
  return {"quickstart", "fault_drill", "submit_storm", "portal_storm"};
}

}  // namespace condorg::workloads
