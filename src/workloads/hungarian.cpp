#include "condorg/workloads/hungarian.h"

#include <limits>
#include <stdexcept>

namespace condorg::workloads {

// Jonker/shortest-augmenting-path formulation of the Hungarian algorithm
// with row/column potentials; O(n^3) worst case.
AssignmentResult solve_assignment(const CostMatrix& cost) {
  const int n = static_cast<int>(cost.size());
  if (n == 0) throw std::invalid_argument("empty cost matrix");
  for (const auto& row : cost) {
    if (static_cast<int>(row.size()) != n) {
      throw std::invalid_argument("cost matrix must be square");
    }
  }
  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;

  // 1-indexed internals, standard formulation.
  std::vector<std::int64_t> u(n + 1, 0), v(n + 1, 0);
  std::vector<int> p(n + 1, 0);    // p[col] = row assigned to col
  std::vector<int> way(n + 1, 0);  // alternating-path backtracking

  for (int i = 1; i <= n; ++i) {
    p[0] = i;
    int j0 = 0;
    std::vector<std::int64_t> minv(n + 1, kInf);
    std::vector<char> used(n + 1, false);
    do {
      used[j0] = true;
      const int i0 = p[j0];
      std::int64_t delta = kInf;
      int j1 = 0;
      for (int j = 1; j <= n; ++j) {
        if (used[j]) continue;
        const std::int64_t cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (int j = 0; j <= n; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      const int j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0);
  }

  AssignmentResult result;
  result.assignment.assign(n, -1);
  for (int j = 1; j <= n; ++j) {
    if (p[j] > 0) result.assignment[p[j] - 1] = j - 1;
  }
  for (int i = 0; i < n; ++i) {
    result.cost += cost[i][result.assignment[i]];
  }
  return result;
}

std::int64_t assignment_cost(const CostMatrix& cost) {
  return solve_assignment(cost).cost;
}

}  // namespace condorg::workloads
