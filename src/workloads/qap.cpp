#include "condorg/workloads/qap.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "condorg/workloads/hungarian.h"

namespace condorg::workloads {

QapInstance QapInstance::random(int n, util::Rng& rng,
                                std::int64_t max_entry) {
  QapInstance instance;
  instance.n = n;
  instance.flow.assign(n, std::vector<std::int64_t>(n, 0));
  instance.dist.assign(n, std::vector<std::int64_t>(n, 0));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const auto f = static_cast<std::int64_t>(rng.range(0, max_entry));
      const auto d = static_cast<std::int64_t>(rng.range(1, max_entry));
      instance.flow[i][j] = instance.flow[j][i] = f;
      instance.dist[i][j] = instance.dist[j][i] = d;
    }
  }
  return instance;
}

std::int64_t QapInstance::evaluate(const std::vector<int>& perm) const {
  std::int64_t total = 0;
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < n; ++k) {
      total += flow[i][k] * dist[perm[i]][perm[k]];
    }
  }
  return total;
}

namespace {

/// Minimum scalar product of two vectors over all pairings: sort one
/// ascending, the other descending. The classic GL inner bound.
std::int64_t min_scalar_product(std::vector<std::int64_t> a,
                                std::vector<std::int64_t> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end(), std::greater<>());
  std::int64_t total = 0;
  for (std::size_t i = 0; i < a.size(); ++i) total += a[i] * b[i];
  return total;
}

}  // namespace

std::int64_t gilmore_lawler_bound(const QapInstance& instance,
                                  const std::vector<int>& prefix,
                                  std::uint64_t* laps_counter) {
  const int n = instance.n;
  const int depth = static_cast<int>(prefix.size());

  std::vector<char> location_used(n, false);
  for (const int loc : prefix) location_used[loc] = true;

  // Fixed-fixed interaction cost.
  std::int64_t fixed_cost = 0;
  for (int i = 0; i < depth; ++i) {
    for (int k = 0; k < depth; ++k) {
      fixed_cost += instance.flow[i][k] * instance.dist[prefix[i]][prefix[k]];
    }
  }
  if (depth == n) return fixed_cost;

  // Remaining facilities / locations.
  std::vector<int> free_fac, free_loc;
  for (int i = depth; i < n; ++i) free_fac.push_back(i);
  for (int j = 0; j < n; ++j) {
    if (!location_used[j]) free_loc.push_back(j);
  }
  const int m = static_cast<int>(free_fac.size());

  // LAP cost c[a][b]: place facility free_fac[a] at location free_loc[b].
  CostMatrix cost(m, std::vector<std::int64_t>(m, 0));
  for (int a = 0; a < m; ++a) {
    const int i = free_fac[a];
    // Interaction of facility i with the remaining free facilities,
    // bounded by the min scalar product against each candidate location's
    // distances to remaining free locations.
    std::vector<std::int64_t> flows;
    flows.reserve(m - 1);
    for (const int k : free_fac) {
      if (k != i) flows.push_back(instance.flow[i][k]);
    }
    for (int b = 0; b < m; ++b) {
      const int j = free_loc[b];
      std::int64_t c = instance.flow[i][i] * instance.dist[j][j];
      // Interaction with already-fixed facilities (exact).
      for (int k = 0; k < depth; ++k) {
        c += instance.flow[i][k] * instance.dist[j][prefix[k]] +
             instance.flow[k][i] * instance.dist[prefix[k]][j];
      }
      // Interaction with free facilities (lower bound).
      std::vector<std::int64_t> dists;
      dists.reserve(m - 1);
      for (const int l : free_loc) {
        if (l != j) dists.push_back(instance.dist[j][l]);
      }
      c += min_scalar_product(flows, dists);
      cost[a][b] = c;
    }
  }
  if (laps_counter) ++*laps_counter;
  return fixed_cost + assignment_cost(cost);
}

QapResult solve_qap_subtree(const QapInstance& instance,
                            const std::vector<int>& prefix,
                            std::int64_t upper_bound) {
  QapResult result;
  result.best_cost = upper_bound;

  std::vector<int> current = prefix;
  std::vector<char> used(instance.n, false);
  for (const int loc : prefix) used[loc] = true;

  // Depth-first branch and bound.
  std::function<void()> recurse = [&] {
    ++result.nodes;
    const int depth = static_cast<int>(current.size());
    if (depth == instance.n) {
      const std::int64_t cost = instance.evaluate(current);
      if (cost < result.best_cost) {
        result.best_cost = cost;
        result.best_perm = current;
      }
      return;
    }
    const std::int64_t bound =
        gilmore_lawler_bound(instance, current, &result.laps_solved);
    if (bound >= result.best_cost) return;  // prune
    for (int loc = 0; loc < instance.n; ++loc) {
      if (used[loc]) continue;
      used[loc] = true;
      current.push_back(loc);
      recurse();
      current.pop_back();
      used[loc] = false;
    }
  };
  recurse();
  return result;
}

QapResult solve_qap(const QapInstance& instance) {
  return solve_qap_subtree(instance, {});
}

QapResult solve_qap_bruteforce(const QapInstance& instance) {
  QapResult result;
  result.best_cost = std::numeric_limits<std::int64_t>::max();
  std::vector<int> perm(instance.n);
  std::iota(perm.begin(), perm.end(), 0);
  do {
    ++result.nodes;
    const std::int64_t cost = instance.evaluate(perm);
    if (cost < result.best_cost) {
      result.best_cost = cost;
      result.best_perm = perm;
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  return result;
}

}  // namespace condorg::workloads
