#include "condorg/workloads/gcat.h"

#include <memory>

namespace condorg::workloads {

GCat::GCat(sim::Host& host, sim::Network& network, sim::Address mss,
           std::string remote_path, GCatOptions options)
    : host_(host),
      client_(host, network, "gcat." + remote_path),
      mss_(std::move(mss)),
      remote_path_(std::move(remote_path)),
      options_(options) {
  // Timer-driven flush so a slow trickle of output still becomes visible.
  auto timer = std::make_shared<std::function<void()>>();
  *timer = [this, weak = std::weak_ptr<std::function<void()>>(timer)] {
    if (finished_ && buffer_bytes_ == 0) return;
    const auto self = weak.lock();
    if (!self) return;
    maybe_flush();
    host_.post(options_.flush_interval, [self] { (*self)(); });
  };
  host_.post(options_.flush_interval, [timer] { (*timer)(); });
}

void GCat::on_output(const std::string& content, std::uint64_t bytes) {
  buffer_ += content;
  buffer_bytes_ += bytes;
  produced_ += bytes;
  peak_buffer_ = std::max(peak_buffer_, buffer_bytes_);
  staleness_.add(static_cast<double>(staleness_bytes()));
  if (buffer_bytes_ >= options_.chunk_bytes) maybe_flush();
}

void GCat::finish(std::function<void()> done) {
  finished_ = true;
  done_ = std::move(done);
  if (buffer_bytes_ == 0 && !inflight_) {
    if (done_) done_();
    return;
  }
  maybe_flush();
}

void GCat::maybe_flush() {
  if (inflight_ || buffer_bytes_ == 0) return;
  send_chunk();
}

void GCat::send_chunk() {
  inflight_ = true;
  const std::string chunk_content = std::move(buffer_);
  const std::uint64_t chunk_bytes = buffer_bytes_;
  buffer_.clear();
  buffer_bytes_ = 0;
  ++chunks_;

  auto attempt = std::make_shared<std::function<void()>>();
  *attempt = [this, chunk_content, chunk_bytes,
              weak = std::weak_ptr<std::function<void()>>(attempt)] {
    const auto self = weak.lock();
    if (!self) return;
    client_.append(
        mss_, remote_path_, chunk_content, chunk_bytes,
        [this, chunk_bytes, self](bool ok) {
          if (!ok) {
            // Network down: keep the chunk and retry; the job continues
            // producing into the (growing) local buffer meanwhile.
            host_.post(options_.retry_delay, [self] { (*self)(); });
            return;
          }
          acked_ += chunk_bytes;
          inflight_ = false;
          if (buffer_bytes_ > 0) {
            send_chunk();
          } else if (finished_ && done_) {
            done_();
          }
        },
        options_.rpc_timeout, remote_path_ + ".gcat", chunks_);
  };
  (*attempt)();
}

DirectWriter::DirectWriter(sim::Host& host, sim::Network& network,
                           sim::Address mss, std::string remote_path,
                           double rpc_timeout, double retry_delay)
    : host_(host),
      client_(host, network, "direct." + remote_path),
      mss_(std::move(mss)),
      remote_path_(std::move(remote_path)),
      rpc_timeout_(rpc_timeout),
      retry_delay_(retry_delay) {}

void DirectWriter::write(const std::string& content, std::uint64_t bytes,
                         std::function<void()> unblocked) {
  const double started = host_.now();
  const std::uint64_t seq = ++seq_;
  auto attempt = std::make_shared<std::function<void()>>();
  *attempt = [this, content, bytes, started, seq,
              unblocked = std::move(unblocked),
              weak = std::weak_ptr<std::function<void()>>(attempt)] {
    const auto self = weak.lock();
    if (!self) return;
    client_.append(mss_, remote_path_, content, bytes,
                   [this, bytes, started, unblocked, self](bool ok) {
                     if (!ok) {
                       host_.post(retry_delay_, [self] { (*self)(); });
                       return;
                     }
                     acked_ += bytes;
                     stall_ += host_.now() - started;
                     unblocked();
                   },
                   rpc_timeout_, remote_path_ + ".direct", seq);
  };
  (*attempt)();
}

}  // namespace condorg::workloads
