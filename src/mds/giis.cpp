#include "condorg/mds/giis.h"

#include "condorg/classad/parser.h"
#include "condorg/sim/rpc.h"

namespace condorg::mds {

GiisServer::GiisServer(sim::Host& host, sim::Network& network,
                       gsi::AuthConfig auth)
    : host_(host),
      network_(network),
      auth_(std::move(auth)),
      entries_(host, "giis.entries") {
  install();
  boot_id_ = host_.add_boot([this] { install(); });
  // Directory contents are soft state rebuilt by re-registration: a crash
  // wipes them (the paper's design leans on exactly this property).
  crash_listener_ = host_.add_crash_listener([this] { entries_->clear(); });
}

GiisServer::~GiisServer() {
  host_.remove_boot(boot_id_);
  host_.remove_crash_listener(crash_listener_);
  if (host_.alive()) host_.unregister_service(kService);
}

void GiisServer::install() {
  host_.register_service(kService,
                         [this](const sim::Message& m) { on_message(m); });
}

void GiisServer::prune() {
  const sim::Time now = host_.now();
  for (auto it = entries_->begin(); it != entries_->end();) {
    if (it->second.expires_at <= now) {
      it = entries_->erase(it);
    } else {
      ++it;
    }
  }
}

std::size_t GiisServer::live_count() const {
  std::size_t live = 0;
  for (const auto& [name, entry] : *entries_) {
    if (entry.expires_at > host_.now()) ++live;
  }
  return live;
}

void GiisServer::on_message(const sim::Message& message) {
  sim::Payload reply;
  reply.set_bool("ok", false);

  const gsi::AuthResult auth =
      gsi::authenticate(auth_, message.body, host_.now());
  if (!auth.ok) {
    ++auth_failures_;
    reply.set("why", auth.why);
    sim::rpc_reply(network_, message, address(), std::move(reply));
    return;
  }

  if (message.type == "grrp.register") {
    const std::string name = message.body.get("name");
    const std::string ad_text = message.body.get("ad");
    const double ttl = message.body.get_double("ttl", 600.0);
    if (name.empty() || ad_text.empty()) {
      reply.set("why", "register requires name and ad");
    } else {
      // Validate the ad parses before accepting it into the directory.
      try {
        (void)classad::parse_ad(ad_text);
        (*entries_)[name] = Entry{ad_text, host_.now() + ttl};
        ++registrations_;
        reply.set_bool("ok", true);
      } catch (const classad::ParseError& e) {
        reply.set("why", std::string("malformed ad: ") + e.what());
      }
    }
    sim::rpc_reply(network_, message, address(), std::move(reply));
    return;
  }

  if (message.type == "grrp.unregister") {
    entries_->erase(message.body.get("name"));
    reply.set_bool("ok", true);
    sim::rpc_reply(network_, message, address(), std::move(reply));
    return;
  }

  if (message.type == "grip.query") {
    prune();
    ++queries_;
    // Constraint: a ClassAd expression evaluated with MY = the resource ad.
    classad::ExprPtr constraint;
    const std::string constraint_text = message.body.get("constraint");
    if (!constraint_text.empty()) {
      try {
        constraint = classad::parse_expr(constraint_text);
      } catch (const classad::ParseError& e) {
        reply.set("why", std::string("bad constraint: ") + e.what());
        sim::rpc_reply(network_, message, address(), std::move(reply));
        return;
      }
    }
    std::size_t matched = 0;
    for (const auto& [name, entry] : *entries_) {
      bool include = true;
      if (constraint) {
        const classad::ClassAd ad = classad::parse_ad(entry.ad_text);
        const classad::Value v = constraint->evaluate(&ad, nullptr);
        include = v.is_bool() && v.as_bool();
      }
      if (include) {
        reply.set("result." + std::to_string(matched) + ".name", name);
        reply.set("result." + std::to_string(matched) + ".ad", entry.ad_text);
        ++matched;
      }
    }
    reply.set_bool("ok", true);
    reply.set_uint("count", matched);
    sim::rpc_reply(network_, message, address(), std::move(reply));
    return;
  }

  if (message.type == "grip.lookup") {
    prune();
    ++queries_;
    const auto it = entries_->find(message.body.get("name"));
    if (it == entries_->end()) {
      reply.set("why", "no such resource");
    } else {
      reply.set_bool("ok", true);
      reply.set("ad", it->second.ad_text);
    }
    sim::rpc_reply(network_, message, address(), std::move(reply));
    return;
  }

  host_.metrics()
      .counter("unknown_message",
               {{"daemon", "giis"}, {"type", message.type}})
      .inc();
  reply.set("why", "unknown operation: " + message.type);
  sim::rpc_reply(network_, message, address(), std::move(reply));
}

}  // namespace condorg::mds
