#include "condorg/mds/provider.h"

namespace condorg::mds {

InfoProvider::InfoProvider(sim::Host& host, sim::Network& network,
                           std::string resource_name, Snapshot snapshot,
                           Options options)
    : host_(host),
      rpc_(host, network, "mds.provider." + resource_name),
      name_(std::move(resource_name)),
      snapshot_(std::move(snapshot)),
      options_(options) {
  boot_id_ = host_.add_boot([this] {
    if (started_) tick();
  });
}

InfoProvider::~InfoProvider() { host_.remove_boot(boot_id_); }

void InfoProvider::add_directory(const sim::Address& giis) {
  directories_.push_back(giis);
}

void InfoProvider::start() {
  if (started_) return;
  started_ = true;
  tick();
}

void InfoProvider::stop() {
  if (!started_) return;
  started_ = false;
  for (const sim::Address& giis : directories_) {
    sim::Payload payload;
    payload.set("name", name_);
    if (!credential_.empty()) payload.set("credential", credential_);
    // Same delivery contract as register: fire-and-forget, TTL is the
    // backstop if this never arrives.
    rpc_.call(giis, "grrp.unregister", std::move(payload), 30.0,
              [](bool, const sim::Payload&) {});
  }
}

void InfoProvider::tick() {
  if (!started_) return;
  const classad::ClassAd ad = snapshot_();
  for (const sim::Address& giis : directories_) {
    sim::Payload payload;
    payload.set("name", name_);
    payload.set("ad", ad.unparse());
    payload.set_double("ttl", options_.period_seconds * options_.ttl_factor);
    if (!credential_.empty()) payload.set("credential", credential_);
    ++sent_;
    // Fire-and-forget with a short timeout: a missed registration is
    // repaired by the next tick; the TTL covers the gap.
    rpc_.call(giis, "grrp.register", std::move(payload), 30.0,
              [](bool, const sim::Payload&) {});
  }
  host_.post(options_.period_seconds, [this] { tick(); });
}

}  // namespace condorg::mds
