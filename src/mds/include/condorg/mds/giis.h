// MDS-2 directory service (§3.3 of the paper).
//
// "A resource uses the Grid Resource Registration Protocol (GRRP) to notify
// other entities that it is part of the Grid. Those entities can then use
// the Grid Resource Information Protocol (GRIP) to obtain information about
// resource status."
//
// GiisServer is such an aggregate directory (a GIIS): resources register
// ClassAd descriptions with a TTL via GRRP and re-register periodically;
// entries whose TTL lapses disappear, so a crashed site silently ages out —
// the staleness semantics brokers must cope with. GRIP queries evaluate a
// ClassAd constraint against every live entry.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "condorg/classad/classad.h"
#include "condorg/gsi/auth.h"
#include "condorg/sim/det.h"
#include "condorg/sim/host.h"
#include "condorg/sim/network.h"

namespace condorg::mds {

class GiisServer {
 public:
  CONDORG_HOST_LOCAL("central");

  static constexpr const char* kService = "mds.giis";

  GiisServer(sim::Host& host, sim::Network& network,
             gsi::AuthConfig auth = {});
  ~GiisServer();

  GiisServer(const GiisServer&) = delete;
  GiisServer& operator=(const GiisServer&) = delete;

  sim::Address address() const { return {host_.name(), kService}; }

  /// Registered entries that have not expired at `now`.
  std::size_t live_count() const;

  std::uint64_t registrations() const { return registrations_; }
  std::uint64_t queries() const { return queries_; }
  std::uint64_t auth_failures() const { return auth_failures_; }

 private:
  struct Entry {
    std::string ad_text;
    sim::Time expires_at = 0;
  };

  void install();
  void on_message(const sim::Message& message);
  void prune();

  sim::Host& host_;
  sim::Network& network_;
  gsi::AuthConfig auth_;
  det::HostLocal<std::map<std::string, Entry>> entries_;  // by name
  int boot_id_ = 0;
  int crash_listener_ = 0;
  std::uint64_t registrations_ = 0;
  std::uint64_t queries_ = 0;
  std::uint64_t auth_failures_ = 0;
};

}  // namespace condorg::mds
