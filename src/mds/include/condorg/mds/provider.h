// Resource information provider: the site-side half of GRRP.
//
// Each site front-end runs an InfoProvider that periodically snapshots its
// resource state (via a user-supplied callback, typically wired to the local
// scheduler) and re-registers the resulting ClassAd with one or more GIIS
// directories. Registration TTL is a multiple of the period, so a site that
// crashes or is partitioned ages out of the directory after a bounded delay.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "condorg/classad/classad.h"
#include "condorg/gsi/credential.h"
#include "condorg/sim/det.h"
#include "condorg/sim/host.h"
#include "condorg/sim/network.h"
#include "condorg/sim/rpc.h"

namespace condorg::mds {

struct ProviderOptions {
  double period_seconds = 60.0;
  double ttl_factor = 2.5;  // TTL = period * factor
};

class InfoProvider {
 public:
  CONDORG_HOST_LOCAL("site");

  using Snapshot = std::function<classad::ClassAd()>;
  using Options = ProviderOptions;

  /// `resource_name` keys the directory entry; `snapshot` builds the ad.
  InfoProvider(sim::Host& host, sim::Network& network,
               std::string resource_name, Snapshot snapshot,
               Options options = {});
  ~InfoProvider();

  InfoProvider(const InfoProvider&) = delete;
  InfoProvider& operator=(const InfoProvider&) = delete;

  /// Register with a directory (can be called for several GIISes).
  void add_directory(const sim::Address& giis);

  /// Attach a credential for authenticated directories.
  void set_credential(const gsi::Credential& credential) {
    credential_ = credential.serialize();
  }

  /// Begin the periodic registration loop (also restarts after host
  /// reboot via a boot function).
  void start();

  /// Stop the loop and send a courtesy grrp.unregister to every directory
  /// so the entry disappears immediately; if the unregister is lost, TTL
  /// expiry still removes it after a bounded delay.
  void stop();

  std::uint64_t registrations_sent() const { return sent_; }

 private:
  void tick();

  sim::Host& host_;
  sim::RpcClient rpc_;
  std::string name_;
  Snapshot snapshot_;
  Options options_;
  // det-local(directories_): target GIIS addresses, fixed at attach time
  // and only read from this host's periodic tick events.
  std::vector<sim::Address> directories_;
  std::string credential_;
  bool started_ = false;
  int boot_id_ = 0;
  std::uint64_t sent_ = 0;
};

}  // namespace condorg::mds
