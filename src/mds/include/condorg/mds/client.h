// GRIP query client: what a personal resource broker uses to discover
// candidate resources.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "condorg/classad/classad.h"
#include "condorg/gsi/credential.h"
#include "condorg/sim/det.h"
#include "condorg/sim/rpc.h"

namespace condorg::mds {

struct ResourceRecord {
  std::string name;
  classad::ClassAd ad;
};

class MdsClient {
 public:
  CONDORG_HOST_LOCAL("user");

  MdsClient(sim::Host& host, sim::Network& network,
            const std::string& reply_service);

  void set_credential(const gsi::Credential& credential) {
    credential_ = credential.serialize();
  }

  using QueryCallback =
      std::function<void(std::optional<std::vector<ResourceRecord>>)>;
  using LookupCallback =
      std::function<void(std::optional<classad::ClassAd>)>;

  /// GRIP query: all live resources whose ad satisfies `constraint`
  /// (a ClassAd expression; empty = all).
  void query(const sim::Address& giis, const std::string& constraint,
             QueryCallback callback, double timeout = 60.0);

  /// GRIP lookup of one resource by name.
  void lookup(const sim::Address& giis, const std::string& name,
              LookupCallback callback, double timeout = 60.0);

 private:
  sim::RpcClient rpc_;
  std::string credential_;
};

}  // namespace condorg::mds
