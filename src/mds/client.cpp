#include "condorg/mds/client.h"

#include "condorg/classad/parser.h"

namespace condorg::mds {

MdsClient::MdsClient(sim::Host& host, sim::Network& network,
                     const std::string& reply_service)
    : rpc_(host, network, reply_service) {}

void MdsClient::query(const sim::Address& giis, const std::string& constraint,
                      QueryCallback callback, double timeout) {
  sim::Payload payload;
  payload.set("constraint", constraint);
  if (!credential_.empty()) payload.set("credential", credential_);
  rpc_.call(giis, "grip.query", std::move(payload), timeout,
            [callback = std::move(callback)](bool ok,
                                             const sim::Payload& reply) {
              if (!ok || !reply.get_bool("ok")) {
                callback(std::nullopt);
                return;
              }
              std::vector<ResourceRecord> records;
              const std::uint64_t count = reply.get_uint("count");
              records.reserve(count);
              for (std::uint64_t i = 0; i < count; ++i) {
                const std::string prefix = "result." + std::to_string(i);
                try {
                  records.push_back(ResourceRecord{
                      reply.get(prefix + ".name"),
                      classad::parse_ad(reply.get(prefix + ".ad"))});
                } catch (const classad::ParseError&) {
                  // Skip entries corrupted in transit; the directory
                  // validated them on registration.
                }
              }
              callback(std::move(records));
            });
}

void MdsClient::lookup(const sim::Address& giis, const std::string& name,
                       LookupCallback callback, double timeout) {
  sim::Payload payload;
  payload.set("name", name);
  if (!credential_.empty()) payload.set("credential", credential_);
  rpc_.call(giis, "grip.lookup", std::move(payload), timeout,
            [callback = std::move(callback)](bool ok,
                                             const sim::Payload& reply) {
              if (!ok || !reply.get_bool("ok")) {
                callback(std::nullopt);
                return;
              }
              try {
                callback(classad::parse_ad(reply.get("ad")));
              } catch (const classad::ParseError&) {
                callback(std::nullopt);
              }
            });
}

}  // namespace condorg::mds
