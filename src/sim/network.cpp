#include "condorg/sim/network.h"

#include <cmath>
#include <stdexcept>

#include "condorg/sim/det.h"
#include "condorg/sim/schedule_controller.h"

namespace condorg::sim {

Address Address::parse(const std::string& text) {
  const auto pos = text.find('/');
  if (pos == std::string::npos) return Address{text, ""};
  return Address{text.substr(0, pos), text.substr(pos + 1)};
}

std::int64_t Payload::get_int(const std::string& key,
                              std::int64_t fallback) const {
  const auto it = fields_.find(key);
  if (it == fields_.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    return fallback;
  }
}

std::uint64_t Payload::get_uint(const std::string& key,
                                std::uint64_t fallback) const {
  const auto it = fields_.find(key);
  if (it == fields_.end()) return fallback;
  try {
    return std::stoull(it->second);
  } catch (const std::exception&) {
    return fallback;
  }
}

double Payload::get_double(const std::string& key, double fallback) const {
  const auto it = fields_.find(key);
  if (it == fields_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    return fallback;
  }
}

bool Payload::get_bool(const std::string& key, bool fallback) const {
  const auto it = fields_.find(key);
  if (it == fields_.end()) return fallback;
  return it->second == "1" || it->second == "true";
}

std::string Payload::serialize() const {
  std::string out;
  for (const auto& [key, value] : fields_) {
    if (!out.empty()) out.push_back('\x1e');
    out += key;
    out.push_back('\x1f');
    out += value;
  }
  return out;
}

Payload Payload::deserialize(const std::string& text) {
  Payload payload;
  if (text.empty()) return payload;
  for (const std::string& pair : util::split(text, '\x1e')) {
    const auto sep = pair.find('\x1f');
    if (sep == std::string::npos) continue;
    payload.fields_[pair.substr(0, sep)] = pair.substr(sep + 1);
  }
  return payload;
}

std::string Payload::debug_string() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : fields_) {
    if (!first) out += ", ";
    first = false;
    out += key + "=" + value;
  }
  out += "}";
  return out;
}

Network::Network(Simulation& sim,
                 std::function<Host*(const std::string&)> resolver)
    : sim_(sim),
      resolver_(std::move(resolver)),
      rng_(sim.make_rng("network")) {}

std::pair<std::string, std::string> Network::ordered(const std::string& a,
                                                     const std::string& b) {
  return a <= b ? std::make_pair(a, b) : std::make_pair(b, a);
}

void Network::set_link(const std::string& a, const std::string& b,
                       const LinkConfig& config) {
  links_[ordered(a, b)] = config;
  if (topology_listener_) topology_listener_();
}

util::Rng& Network::send_rng(const std::string& host) {
  std::lock_guard<std::mutex> lock(send_rng_mu_);
  const auto it = send_rngs_.find(host);
  if (it != send_rngs_.end()) return it->second;
  // make_rng derives the stream purely from the root seed and the name, so
  // lazy creation order (which varies with the worker interleaving) does
  // not affect the draws. std::map nodes are stable: the reference survives
  // later insertions, and only this host's island ever advances the stream.
  return send_rngs_.emplace(host, sim_.make_rng("network/send/" + host))
      .first->second;
}

const LinkConfig& Network::link(const std::string& a,
                                const std::string& b) const {
  const auto it = links_.find(ordered(a, b));
  return it == links_.end() ? default_link_ : it->second;
}

void Network::set_partitioned(const std::string& a, const std::string& b,
                              bool value) {
  if (value) {
    partitions_.insert(ordered(a, b));
  } else {
    partitions_.erase(ordered(a, b));
  }
}

bool Network::partitioned(const std::string& a, const std::string& b) const {
  return partitions_.count(ordered(a, b)) > 0 || isolated_.count(a) > 0 ||
         isolated_.count(b) > 0;
}

void Network::set_isolated(const std::string& host, bool isolated) {
  if (isolated) {
    isolated_.insert(host);
  } else {
    isolated_.erase(host);
  }
}

bool Network::isolated(const std::string& host) const {
  return isolated_.count(host) > 0;
}

void Network::send(Message message) {
  sent_.fetch_add(1, std::memory_order_relaxed);
  // Island mode draws loss/jitter from the sender's own stream (the shared
  // stream's draw order would depend on the worker interleaving); the
  // legacy kernel keeps the shared stream so its pinned digests hold.
  util::Rng& rng =
      sim_.island_mode() ? send_rng(message.from.host) : rng_;
  // Local delivery (same host) bypasses the WAN: no loss, tiny latency.
  const bool local = message.from.host == message.to.host;
  if (!local) {
    if (partitioned(message.from.host, message.to.host)) {
      blocked_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    const LinkConfig& cfg = link(message.from.host, message.to.host);
    if (cfg.loss_probability > 0.0 && rng.chance(cfg.loss_probability)) {
      lost_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  const LinkConfig& cfg = link(message.from.host, message.to.host);
  double latency;
  if (local) {
    latency = 1e-4;
  } else if (const ScheduleController* ctl = sim_.controller()) {
    // Exploration mode: snap delivery up to the next quantum boundary (and
    // skip the jitter draw) so concurrently in-flight messages tie on their
    // delivery timestamp — the controller then permutes delivery order via
    // the kernel's bucket pick.
    const double quantum = ctl->delivery_quantum();
    const double raw = sim_.now() + cfg.latency;
    latency = std::ceil(raw / quantum) * quantum - sim_.now();
    if (latency <= 0.0) latency = quantum;
  } else {
    latency = cfg.latency +
              (cfg.jitter > 0.0 ? rng.uniform(0.0, cfg.jitter) : 0.0);
  }
  // Deliveries target the destination host's kernel queue; when that queue
  // lives on another island the kernel routes through the island inbox. In
  // legacy mode every host is queue 0 and this is exactly schedule_in.
  std::uint32_t dest_queue = 0;
  if (sim_.island_mode()) {
    if (Host* d = resolver_(message.to.host)) dest_queue = d->queue();
  }
  sim_.schedule_cross(
      dest_queue, sim_.now() + latency, [this, message = std::move(message)] {
    // Partition may have appeared while in flight.
    if (message.from.host != message.to.host &&
        partitioned(message.from.host, message.to.host)) {
      blocked_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    Host* dest = resolver_(message.to.host);
    if (dest == nullptr || !dest->alive()) {
      dead_destination_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    const Host::Handler* handler = dest->find_service(message.to.service);
    if (handler == nullptr) {
      dead_destination_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    delivered_.fetch_add(1, std::memory_order_relaxed);
    {
      // DetSan: the handler runs on the destination host. The tap is a
      // harness observer and stays outside the stamped scope.
      det::ScopedHost scope(dest);
      Profiler& profiler = sim_.profiler();
      if (profiler.enabled()) {
        const std::uint64_t start = Profiler::clock_ns();
        (*handler)(message);
        profiler.record_message(message, Profiler::clock_ns() - start);
      } else {
        (*handler)(message);
      }
    }
    if (tap_) tap_(message);
  });
}

double Network::transfer_seconds(const std::string& a, const std::string& b,
                                 std::uint64_t bytes) const {
  if (a == b) return 1e-4;
  const LinkConfig& cfg = link(a, b);
  return cfg.latency + static_cast<double>(bytes) * 8.0 / cfg.bandwidth_bps;
}

}  // namespace condorg::sim
