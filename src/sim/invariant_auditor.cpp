#include "condorg/sim/invariant_auditor.h"

#include <stdexcept>
#include <utility>

#include "condorg/util/strings.h"

namespace condorg::sim {

void InvariantAuditor::add_check(std::string name, Check check) {
  if (!check) throw std::invalid_argument("add_check: null check");
  checks_.push_back(NamedCheck{std::move(name), std::move(check)});
}

std::size_t InvariantAuditor::run(Time now) {
  ++audits_;
  std::size_t found = 0;
  std::vector<std::string> out;
  for (const NamedCheck& named : checks_) {
    out.clear();
    named.check(out);
    for (std::string& detail : out) {
      ++found;
      if (fail_fast_) {
        throw std::logic_error("invariant violated at t=" +
                               std::to_string(now) + " [" + named.name +
                               "]: " + detail);
      }
      if (violations_.size() < kMaxRecorded) {
        violations_.push_back(
            AuditViolation{now, named.name, std::move(detail)});
      }
    }
  }
  return found;
}

std::string InvariantAuditor::report() const {
  std::string text = util::format(
      "invariant auditor: %llu audit pass(es), %zu check(s), %zu "
      "violation(s)\n",
      static_cast<unsigned long long>(audits_), checks_.size(),
      violations_.size());
  std::size_t shown = 0;
  for (const AuditViolation& v : violations_) {
    if (++shown > 16) {
      text += util::format("  ... %zu more\n", violations_.size() - 16);
      break;
    }
    text += util::format("  t=%.3f [%s] %s\n", v.when, v.check.c_str(),
                         v.detail.c_str());
  }
  return text;
}

}  // namespace condorg::sim
