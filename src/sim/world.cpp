#include "condorg/sim/world.h"

#include <cstdlib>
#include <stdexcept>
#include <string_view>

#include "condorg/sim/det.h"

namespace condorg::sim {

World::World(std::uint64_t seed)
    : sim_(seed),
      net_(sim_, [this](const std::string& name) { return find_host(name); }) {
  // Every binary that builds a World honors CONDORG_DETSAN=1 at runtime,
  // and CONDORG_PROFILE=1 arms the kernel profiler the same way.
  det::arm_from_env();
  const char* profile = std::getenv("CONDORG_PROFILE");
  if (profile != nullptr && *profile != '\0' &&
      std::string_view(profile) != "0") {
    sim_.profiler().set_enabled(true);
  }
}

Host& World::add_host(const std::string& name) {
  auto [it, inserted] =
      hosts_.emplace(name, std::make_unique<Host>(sim_, name));
  if (!inserted) {
    throw std::invalid_argument("duplicate host name: " + name);
  }
  return *it->second;
}

Host* World::find_host(const std::string& name) {
  const auto it = hosts_.find(name);
  return it == hosts_.end() ? nullptr : it->second.get();
}

Host& World::host(const std::string& name) {
  Host* h = find_host(name);
  if (h == nullptr) throw std::invalid_argument("unknown host: " + name);
  return *h;
}

std::vector<std::string> World::host_names() const {
  std::vector<std::string> names;
  names.reserve(hosts_.size());
  for (const auto& [name, host] : hosts_) names.push_back(name);
  return names;
}

}  // namespace condorg::sim
