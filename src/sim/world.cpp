#include "condorg/sim/world.h"

#include <cstdlib>
#include <stdexcept>
#include <string_view>

#include "condorg/sim/det.h"
#include "condorg/sim/island.h"

namespace condorg::sim {
namespace {
// Process-wide override installed by ScopedParallelOverride (-1 = none).
// Read once per World construction, always from scenario-setup code, so a
// plain int with no synchronization is enough.
// lint-allow(mutable-global): scoped override knob, set/read at setup time
int g_parallel_override = -1;

unsigned parallel_from_env() {
  const char* value = std::getenv("CONDORG_PARALLEL");
  if (value == nullptr || *value == '\0') return 0;
  char* end = nullptr;
  const unsigned long n = std::strtoul(value, &end, 10);
  if (end == value || *end != '\0') return 0;
  return static_cast<unsigned>(n > 64 ? 64 : n);
}
}  // namespace

World::ScopedParallelOverride::ScopedParallelOverride(int threads)
    : previous_(g_parallel_override) {
  g_parallel_override = threads;
}

World::ScopedParallelOverride::~ScopedParallelOverride() {
  g_parallel_override = previous_;
}

World::World(std::uint64_t seed)
    : sim_(seed),
      net_(sim_, [this](const std::string& name) { return find_host(name); }) {
  // Every binary that builds a World honors CONDORG_DETSAN=1 at runtime,
  // and CONDORG_PROFILE=1 arms the kernel profiler the same way.
  det::arm_from_env();
  const char* profile = std::getenv("CONDORG_PROFILE");
  if (profile != nullptr && *profile != '\0' &&
      std::string_view(profile) != "0") {
    sim_.profiler().set_enabled(true);
  }
  // CONDORG_PARALLEL=N selects the island kernel with an N-thread budget
  // (N=1 runs the same windowed executor inline — the digest is identical
  // for every N, so 1 is the cheap way to cross-check a parallel run).
  // ScopedParallelOverride wins over the environment; 0 keeps legacy.
  const unsigned parallel = g_parallel_override >= 0
                                ? static_cast<unsigned>(g_parallel_override)
                                : parallel_from_env();
  if (parallel >= 1) {
    sim_.configure_islands(parallel);
    // Rebuilt (at a synchronization point) whenever hosts or links change:
    // group hosts connected by zero-lookahead links, bound the lookahead by
    // the fastest cross-island link.
    sim_.set_island_plan_hook([this] {
      std::vector<std::string> names;
      std::vector<std::uint32_t> queues;
      names.reserve(hosts_.size());
      queues.reserve(hosts_.size());
      for (const auto& [name, host] : hosts_) {
        names.push_back(name);
        queues.push_back(host->queue());
      }
      return IslandPlanner::build(net_, queues, names);
    });
    net_.set_topology_listener([this] { sim_.notify_topology_changed(); });
  }
}

Host& World::add_host(const std::string& name) {
  auto [it, inserted] = hosts_.emplace(
      name, std::make_unique<Host>(sim_, name, sim_.register_queue()));
  if (!inserted) {
    throw std::invalid_argument("duplicate host name: " + name);
  }
  return *it->second;
}

Host* World::find_host(const std::string& name) {
  const auto it = hosts_.find(name);
  return it == hosts_.end() ? nullptr : it->second.get();
}

Host& World::host(const std::string& name) {
  Host* h = find_host(name);
  if (h == nullptr) throw std::invalid_argument("unknown host: " + name);
  return *h;
}

std::vector<std::string> World::host_names() const {
  std::vector<std::string> names;
  names.reserve(hosts_.size());
  for (const auto& [name, host] : hosts_) names.push_back(name);
  return names;
}

}  // namespace condorg::sim
