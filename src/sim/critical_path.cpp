#include "condorg/sim/critical_path.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <utility>

#include "condorg/util/json.h"
#include "condorg/util/stats.h"

namespace condorg::sim {
namespace {

bool starts_with(const std::string& text, const char* prefix) {
  return text.rfind(prefix, 0) == 0;
}

/// Phase of the interval *ending* at `record` — the record marks the
/// completion of the phase's work, so the time since its cause belongs to
/// that phase.
Phase classify(const TraceRecord& record) {
  const std::string& name = record.name;
  const bool is_begin = record.kind == TraceRecord::Kind::kSpanBegin;
  // Root span: the begin anchors the walk (queue time precedes it); the
  // end closes on the terminal callback, so time ending there is runtime.
  if (name == "job") {
    return is_begin ? Phase::kScheddQueue : Phase::kExecution;
  }
  if (name == "gram.submit") {
    // begin: the GridManager picked the job up (idle wait ends);
    // end: the two-phase submit acknowledged (RTT ends).
    return is_begin ? Phase::kScheddQueue : Phase::kGramSubmitRtt;
  }
  if (name == "gk.auth") return Phase::kGramSubmitRtt;  // request leg landed
  if (name == "jm.created") return Phase::kGatekeeperAuth;
  if (name == "jm.commit") return Phase::kGramSubmitRtt;  // commit leg
  if (name == "jm.stage_in") {
    return is_begin ? Phase::kJobmanagerSpawn : Phase::kStageIn;
  }
  if (name == "jm.stage_out") {
    return is_begin ? Phase::kExecution : Phase::kStageOut;
  }
  if (name == "jm.state") {
    if (starts_with(record.detail, "ACTIVE")) return Phase::kPollWait;
    if (starts_with(record.detail, "DONE")) return Phase::kExecution;
    if (starts_with(record.detail, "FAILED")) return Phase::kRecovery;
    return Phase::kJobmanagerSpawn;  // STAGE_IN / PENDING bookkeeping edges
  }
  if (name == "userlog.EXECUTE" || name == "userlog.GRID_SUBMIT" ||
      name == "userlog.TERMINATED") {
    return Phase::kGramSubmitRtt;  // callback leg back to the submit host
  }
  if (name == "userlog.SUBMIT") return Phase::kScheddQueue;
  if (starts_with(name, "userlog.")) return Phase::kRecovery;
  if (starts_with(name, "recovery.")) return Phase::kRecovery;
  if (starts_with(name, "credential.")) return Phase::kRecovery;
  if (starts_with(name, "gram.")) return Phase::kGramSubmitRtt;
  if (starts_with(name, "gk.")) return Phase::kGatekeeperAuth;
  if (starts_with(name, "jm.")) return Phase::kJobmanagerSpawn;
  return Phase::kUnattributed;
}

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

struct Indexes {
  const std::vector<TraceRecord>* records = nullptr;
  std::map<RecordId, std::size_t> by_id;
  // Per job, record indexes in push (= id, = time) order.
  std::map<std::uint64_t, std::vector<std::size_t>> by_job;
  // Per job, declared [recovery.begin, recovery.end] windows (an unmatched
  // begin stays open to +inf). These overlay the walk: outage time inside a
  // window is carved out of whatever interval covers it, because a recovery
  // that overlaps execution never shows up as a backward step of its own.
  std::map<std::uint64_t, std::vector<std::pair<double, double>>> recovery;
};

/// Charge [lo, hi] to `bucket`, except the parts inside the job's declared
/// recovery windows, which go to the recovery phase.
void attribute(const Indexes& ix, std::uint64_t job, double lo, double hi,
               std::size_t bucket, CriticalPath::JobWalk& out) {
  if (hi <= lo) return;
  double overlap = 0.0;
  if (bucket != static_cast<std::size_t>(Phase::kRecovery)) {
    const auto it = ix.recovery.find(job);
    if (it != ix.recovery.end()) {
      for (const auto& [begin, end] : it->second) {
        overlap += std::max(0.0, std::min(hi, end) - std::max(lo, begin));
      }
      overlap = std::min(overlap, hi - lo);  // windows never overlap, but
                                             // stay safe against bad input
    }
  }
  out.phases[static_cast<std::size_t>(Phase::kRecovery)] += overlap;
  out.phases[bucket] += (hi - lo) - overlap;
}

/// Backward walk from `from` to the job's root begin, tiling the window
/// into phase buckets. Each step follows the cause edge when it stays on
/// this job's chain (job-agnostic records allowed), else falls back to the
/// job's own previous record; the covered interval is charged to the phase
/// the stepped-from record ends.
CriticalPath::JobWalk walk(const Indexes& ix, std::uint64_t job,
                           std::size_t from, std::size_t root) {
  const std::vector<TraceRecord>& records = *ix.records;
  const std::vector<std::size_t>& own = ix.by_job.at(job);
  CriticalPath::JobWalk out;
  out.job = job;
  const double root_t = records[root].t;
  out.window = records[from].t - root_t;

  std::size_t cur = from;
  std::size_t steps = 0;
  while (records[cur].id != records[root].id && records[cur].t > root_t &&
         ++steps <= records.size()) {
    const TraceRecord& effect = records[cur];
    std::size_t pred = kNpos;
    if (effect.cause != 0) {
      const auto it = ix.by_id.find(effect.cause);
      if (it != ix.by_id.end()) {
        const TraceRecord& candidate = records[it->second];
        if (candidate.id < effect.id && candidate.t <= effect.t &&
            (candidate.job == job || candidate.job == 0)) {
          pred = it->second;
        }
      }
    }
    if (pred == kNpos) {
      // Cause missing or off-chain (e.g. a GridManager tick that batched
      // several jobs): resume from this job's latest earlier record.
      auto it = std::upper_bound(
          own.begin(), own.end(), effect.id,
          [&records](RecordId id, std::size_t index) {
            return id <= records[index].id;
          });
      if (it != own.begin()) pred = *(it - 1);
    }
    const auto bucket = static_cast<std::size_t>(classify(effect));
    if (pred == kNpos) {
      attribute(ix, job, root_t, effect.t, bucket, out);
      return out;
    }
    const TraceRecord& before = records[pred];
    attribute(ix, job, std::max(before.t, root_t), effect.t, bucket, out);
    if (before.t <= root_t && before.id != records[root].id) return out;
    cur = pred;
  }
  return out;
}

void aggregate_phases(const std::vector<CriticalPath::JobWalk>& walks,
                      util::JsonValue& into) {
  double window_sum = 0.0;
  for (const auto& w : walks) window_sum += w.window;
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    util::Samples samples;
    double total = 0.0;
    for (const auto& w : walks) {
      samples.add(w.phases[p]);
      total += w.phases[p];
    }
    util::JsonValue entry = util::JsonValue::object();
    entry["total_seconds"] = total;
    entry["mean_seconds"] = samples.empty() ? 0.0 : samples.mean();
    entry["p50_seconds"] = samples.empty() ? 0.0 : samples.percentile(50);
    entry["p99_seconds"] = samples.empty() ? 0.0 : samples.percentile(99);
    entry["share"] = window_sum > 0.0 ? total / window_sum : 0.0;
    into[phase_name(static_cast<Phase>(p))] = std::move(entry);
  }
}

void fold_walks(const std::vector<CriticalPath::JobWalk>& walks,
                const char* stack, std::string& out) {
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    double total = 0.0;
    for (const auto& w : walks) total += w.phases[p];
    const auto ms = static_cast<long long>(std::llround(total * 1000.0));
    if (ms <= 0) continue;
    out += stack;
    out += ';';
    out += phase_name(static_cast<Phase>(p));
    out += ' ';
    out += std::to_string(ms);
    out += '\n';
  }
}

}  // namespace

const char* phase_name(Phase phase) {
  switch (phase) {
    case Phase::kScheddQueue:
      return "schedd-queue";
    case Phase::kGramSubmitRtt:
      return "gram-submit-rtt";
    case Phase::kGatekeeperAuth:
      return "gatekeeper-auth";
    case Phase::kJobmanagerSpawn:
      return "jobmanager-spawn";
    case Phase::kStageIn:
      return "stage-in";
    case Phase::kPollWait:
      return "poll-wait";
    case Phase::kRecovery:
      return "recovery";
    case Phase::kExecution:
      return "execution";
    case Phase::kStageOut:
      return "stage-out";
    case Phase::kUnattributed:
      return "unattributed";
  }
  return "?";
}

CriticalPath::CriticalPath(const std::vector<TraceRecord>& records) {
  Indexes ix;
  ix.records = &records;
  std::map<std::uint64_t, double> open_recovery;  // job -> begin time
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (records[i].id != 0) ix.by_id.emplace(records[i].id, i);
    if (records[i].job != 0) {
      ix.by_job[records[i].job].push_back(i);
      if (records[i].name == "recovery.begin") {
        open_recovery.emplace(records[i].job, records[i].t);
      } else if (records[i].name == "recovery.end") {
        const auto it = open_recovery.find(records[i].job);
        if (it != open_recovery.end()) {
          ix.recovery[records[i].job].emplace_back(it->second, records[i].t);
          open_recovery.erase(it);
        }
      }
    }
  }
  for (const auto& [job, begin] : open_recovery) {
    // Never-recovered jobs: the outage runs to the end of the trace.
    ix.recovery[job].emplace_back(begin,
                                  std::numeric_limits<double>::infinity());
  }
  for (const auto& [job, indexes] : ix.by_job) {
    std::size_t root = kNpos;
    std::size_t active = kNpos;
    std::size_t terminal = kNpos;
    for (const std::size_t i : indexes) {
      const TraceRecord& r = records[i];
      if (r.name == "job" && r.kind == TraceRecord::Kind::kSpanBegin &&
          root == kNpos) {
        root = i;
      } else if (r.name == "userlog.EXECUTE" && active == kNpos) {
        active = i;
      } else if (r.name == "job" && r.kind == TraceRecord::Kind::kSpanEnd &&
                 terminal == kNpos) {
        terminal = i;
      }
    }
    if (root == kNpos) continue;
    ++jobs_seen_;
    if (active != kNpos) to_active_.push_back(walk(ix, job, active, root));
    if (terminal != kNpos) {
      to_terminal_.push_back(walk(ix, job, terminal, root));
    }
  }
}

double CriticalPath::mean_time_to_active() const {
  if (to_active_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& w : to_active_) sum += w.window;
  return sum / static_cast<double>(to_active_.size());
}

double CriticalPath::attributed_share() const {
  double window_sum = 0.0;
  double unattributed = 0.0;
  for (const auto& w : to_active_) {
    window_sum += w.window;
    unattributed += w.phases[static_cast<std::size_t>(Phase::kUnattributed)];
  }
  if (window_sum <= 0.0) return 0.0;
  return 1.0 - unattributed / window_sum;
}

std::map<std::string, double> CriticalPath::phase_p99_to_active() const {
  std::map<std::string, double> out;
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    util::Samples samples;
    for (const auto& w : to_active_) samples.add(w.phases[p]);
    out[phase_name(static_cast<Phase>(p))] =
        samples.empty() ? 0.0 : samples.percentile(99);
  }
  return out;
}

std::string CriticalPath::to_json() const {
  util::JsonValue root = util::JsonValue::object();
  root["jobs_seen"] = static_cast<std::uint64_t>(jobs_seen_);
  root["reached_active"] = static_cast<std::uint64_t>(to_active_.size());
  root["reached_terminal"] = static_cast<std::uint64_t>(to_terminal_.size());
  util::Samples tta;
  for (const auto& w : to_active_) tta.add(w.window);
  util::JsonValue tta_json = util::JsonValue::object();
  tta_json["count"] = static_cast<std::uint64_t>(tta.count());
  tta_json["mean_seconds"] = tta.empty() ? 0.0 : tta.mean();
  tta_json["p50_seconds"] = tta.empty() ? 0.0 : tta.percentile(50);
  tta_json["p99_seconds"] = tta.empty() ? 0.0 : tta.percentile(99);
  tta_json["max_seconds"] = tta.empty() ? 0.0 : tta.max();
  root["time_to_active"] = std::move(tta_json);
  root["attributed_share"] = attributed_share();
  util::JsonValue phases = util::JsonValue::object();
  aggregate_phases(to_active_, phases);
  root["phases"] = std::move(phases);
  util::JsonValue terminal = util::JsonValue::object();
  aggregate_phases(to_terminal_, terminal);
  root["terminal_phases"] = std::move(terminal);
  return root.dump();
}

std::string CriticalPath::to_folded() const {
  std::string out;
  fold_walks(to_active_, "time-to-active", out);
  fold_walks(to_terminal_, "to-terminal", out);
  return out;
}

std::vector<std::string> CriticalPath::self_check() const {
  std::vector<std::string> problems;
  const auto check = [&problems](const std::vector<JobWalk>& walks,
                                 const char* what) {
    for (const JobWalk& w : walks) {
      double sum = 0.0;
      for (const double s : w.phases) sum += s;
      if (w.window < 0.0) {
        problems.push_back(std::string(what) + " job " +
                           std::to_string(w.job) + ": negative window");
        continue;
      }
      const double tolerance = 1e-6 * std::max(1.0, w.window);
      if (std::abs(sum - w.window) > tolerance) {
        problems.push_back(
            std::string(what) + " job " + std::to_string(w.job) +
            ": phases sum to " + util::JsonValue::number_to_string(sum) +
            " but window is " + util::JsonValue::number_to_string(w.window));
      }
    }
  };
  check(to_active_, "to-active");
  check(to_terminal_, "to-terminal");
  return problems;
}

}  // namespace condorg::sim
