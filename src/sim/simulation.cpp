#include "condorg/sim/simulation.h"

#include <stdexcept>
#include <utility>

namespace condorg::sim {

Simulation::Simulation(std::uint64_t seed) : rng_(seed) {}

EventId Simulation::schedule_at(Time when, std::function<void()> fn) {
  if (!fn) throw std::invalid_argument("schedule_at: null callback");
  if (when < now_) when = now_;  // clamp: no scheduling into the past
  const EventId id = next_id_++;
  queue_.push(QueuedEvent{when, id});
  handlers_.emplace(id, std::move(fn));
  return id;
}

bool Simulation::cancel(EventId id) { return handlers_.erase(id) > 0; }

void Simulation::dispatch(const QueuedEvent& ev) {
  const auto it = handlers_.find(ev.id);
  if (it == handlers_.end()) return;  // cancelled
  // Move the handler out before invoking: the callback may schedule or
  // cancel other events, invalidating iterators.
  std::function<void()> fn = std::move(it->second);
  handlers_.erase(it);
  now_ = ev.when;
  ++dispatched_;
  fn();
}

void Simulation::run() {
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) {
    const QueuedEvent ev = queue_.top();
    queue_.pop();
    dispatch(ev);
  }
}

bool Simulation::run_until(Time until) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.top().when <= until) {
    const QueuedEvent ev = queue_.top();
    queue_.pop();
    dispatch(ev);
  }
  if (!stopped_ && now_ < until) now_ = until;
  // Drop cancelled stragglers at the front so pending() stays meaningful.
  while (!queue_.empty() && !handlers_.count(queue_.top().id)) queue_.pop();
  return !queue_.empty();
}

}  // namespace condorg::sim
