#include "condorg/sim/simulation.h"

#include <cstring>
#include <stdexcept>
#include <utility>

#include "condorg/sim/invariant_auditor.h"
#include "condorg/util/logging.h"

namespace condorg::sim {
namespace {
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

// Referenced only from CONDORG_LOG_TRACE sites; the discarded-if-constexpr
// branch still names it, so it needs no preprocessor guard of its own.
[[maybe_unused]] const util::Logger& kernel_logger() {
  static const util::Logger logger("sim");
  return logger;
}

std::uint64_t fnv1a_mix(std::uint64_t digest, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    digest ^= (value >> (byte * 8)) & 0xff;
    digest *= kFnvPrime;
  }
  return digest;
}
}  // namespace

Simulation::Simulation(std::uint64_t seed) : rng_(seed) {}

void Simulation::attach_auditor(InvariantAuditor* auditor,
                                std::uint64_t period) {
  auditor_ = auditor;
  audit_period_ = period > 0 ? period : 1;
}

EventId Simulation::schedule_at(Time when, std::function<void()> fn) {
  if (!fn) throw std::invalid_argument("schedule_at: null callback");
  if (when < now_) when = now_;  // clamp: no scheduling into the past
  const EventId id = next_id_++;
  queue_.push(QueuedEvent{when, id});
  handlers_.emplace(id, std::move(fn));
  return id;
}

bool Simulation::cancel(EventId id) { return handlers_.erase(id) > 0; }

void Simulation::dispatch(const QueuedEvent& ev) {
  const auto it = handlers_.find(ev.id);
  if (it == handlers_.end()) return;  // cancelled
  // Move the handler out before invoking: the callback may schedule or
  // cancel other events, invalidating iterators.
  std::function<void()> fn = std::move(it->second);
  handlers_.erase(it);
  now_ = ev.when;
  ++dispatched_;
  CONDORG_LOG_TRACE(kernel_logger(), "dispatch t=", ev.when, " id=", ev.id);
  std::uint64_t when_bits = 0;
  static_assert(sizeof(when_bits) == sizeof(ev.when));
  std::memcpy(&when_bits, &ev.when, sizeof(when_bits));
  trace_digest_ = fnv1a_mix(fnv1a_mix(trace_digest_, when_bits), ev.id);
  fn();
  // Audit after the callback returns: between events every daemon's state is
  // quiescent, so cross-daemon invariants are meaningful.
  if (auditor_ != nullptr && dispatched_ % audit_period_ == 0) {
    auditor_->run(now_);
  }
}

void Simulation::run() {
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) {
    const QueuedEvent ev = queue_.top();
    queue_.pop();
    dispatch(ev);
  }
}

bool Simulation::run_until(Time until) {
  stopped_ = false;
  while (!stopped_ && !queue_.empty() && queue_.top().when <= until) {
    const QueuedEvent ev = queue_.top();
    queue_.pop();
    dispatch(ev);
  }
  if (!stopped_ && now_ < until) now_ = until;
  // Drop cancelled stragglers at the front so pending() stays meaningful.
  while (!queue_.empty() && !handlers_.count(queue_.top().id)) queue_.pop();
  return !queue_.empty();
}

}  // namespace condorg::sim
