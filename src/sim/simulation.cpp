#include "condorg/sim/simulation.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "condorg/sim/invariant_auditor.h"
#include "condorg/sim/schedule_controller.h"
#include "condorg/util/logging.h"

namespace condorg::sim {
namespace {
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

// Referenced only from CONDORG_LOG_TRACE sites; the discarded-if-constexpr
// branch still names it, so it needs no preprocessor guard of its own.
[[maybe_unused]] const util::Logger& kernel_logger() {
  static const util::Logger logger("sim");
  return logger;
}

std::uint64_t fnv1a_mix(std::uint64_t digest, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    digest ^= (value >> (byte * 8)) & 0xff;
    digest *= kFnvPrime;
  }
  return digest;
}

// Calendar key for a timestamp: its bit pattern, with -0.0 folded into +0.0
// so numerically-equal times land in the same bucket (otherwise two heap
// entries could tie on `when` and the FIFO order across them would be
// unspecified). The PendingEvent still carries `when` verbatim — the digest
// sees exactly the bits that were scheduled.
std::uint64_t bucket_key(Time when) {
  if (when == 0.0) when = 0.0;  // normalize -0.0
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(when));
  std::memcpy(&bits, &when, sizeof(bits));
  return bits;
}
}  // namespace

Simulation::Simulation(std::uint64_t seed) : rng_(seed) {}

void Simulation::attach_auditor(InvariantAuditor* auditor,
                                std::uint64_t period) {
  auditor_ = auditor;
  audit_period_ = period > 0 ? period : 1;
}

// 4-ary min-heap on `when`, hand-sifted with a hole instead of
// std::push_heap/pop_heap swaps: half the depth of a binary heap and one
// move per level. It only orders *distinct* timestamps (one bucket each), so
// ties are impossible and any correct heap yields the same dispatch stream.
void Simulation::heap_push(BucketRef node) {
  std::size_t i = heap_.size();
  heap_.push_back(node);
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!heap_[parent].after(node)) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = node;
}

void Simulation::heap_pop_front() {
  const BucketRef last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n > 0) {
    std::size_t i = 0;
    for (;;) {
      const std::size_t first_child = (i << 2) + 1;
      if (first_child >= n) break;
      std::size_t best = first_child;
      const std::size_t end = first_child + 4 < n ? first_child + 4 : n;
      for (std::size_t c = first_child + 1; c < end; ++c) {
        if (heap_[best].after(heap_[c])) best = c;
      }
      if (!last.after(heap_[best])) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }
}

void Simulation::drop_stale_front() {
  while (!heap_.empty()) {
    Bucket& b = buckets_[heap_.front().bucket];
    const std::size_t size = b.items.size();
    std::size_t next = b.next;
    while (next < size &&
           slots_[b.items[next].slot].gen != b.items[next].gen) {
      ++next;
    }
    b.next = next;
    if (next < size) return;  // front bucket has a live event at its cursor
    // Fully drained: retire the bucket (keeping its capacity for reuse).
    bucket_of_.erase(b.key);
    b.items.clear();
    b.next = 0;
    free_buckets_.push_back(heap_.front().bucket);
    heap_pop_front();
  }
}

Simulation::EventRecord* Simulation::record_for(EventId id) {
  const std::uint64_t hi = id >> 32;
  if (hi == 0 || hi > slots_.size()) return nullptr;
  EventRecord& rec = slots_[static_cast<std::size_t>(hi - 1)];
  if (rec.gen != static_cast<std::uint32_t>(id) || !rec.fn) return nullptr;
  return &rec;
}

EventId Simulation::schedule_at(Time when, std::function<void()> fn) {
  if (!fn) throw std::invalid_argument("schedule_at: null callback");
  if (when < now_) when = now_;  // clamp: no scheduling into the past
  std::uint32_t slot;
  if (free_.empty()) {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  } else {
    slot = free_.back();
    free_.pop_back();
  }
  EventRecord& rec = slots_[slot];
  rec.fn = std::move(fn);
  rec.cause = tracer_.enabled() ? tracer_.context() : 0;
  const std::uint32_t gen = rec.gen;

  const std::uint64_t key = bucket_key(when);
  const auto [it, inserted] = bucket_of_.try_emplace(key, 0);
  if (inserted) {
    std::uint32_t bi;
    if (free_buckets_.empty()) {
      bi = static_cast<std::uint32_t>(buckets_.size());
      buckets_.emplace_back();
    } else {
      bi = free_buckets_.back();
      free_buckets_.pop_back();
    }
    buckets_[bi].key = key;
    it->second = bi;
    heap_push(BucketRef{when, bi});
  }
  buckets_[it->second].items.push_back(
      PendingEvent{when, next_seq_++, slot, gen});
  ++live_;
  return make_id(slot, gen);
}

bool Simulation::cancel(EventId id) {
  EventRecord* rec = record_for(id);
  if (rec == nullptr) return false;
  rec->fn = nullptr;
  ++rec->gen;  // invalidates the pending entry and any outstanding copy of id
  free_.push_back(static_cast<std::uint32_t>((id >> 32) - 1));
  --live_;
  return true;
}

void Simulation::dispatch(const PendingEvent& ev) {
  EventRecord& rec = slots_[ev.slot];
  // Move the handler out and retire the slot before invoking: the callback
  // may schedule (reusing this slot under a fresh generation) or cancel
  // other events.
  std::function<void()> fn = std::move(rec.fn);
  const RecordId cause = rec.cause;
  rec.fn = nullptr;
  rec.cause = 0;
  ++rec.gen;
  free_.push_back(ev.slot);
  --live_;
  now_ = ev.when;
  ++dispatched_;
  CONDORG_LOG_TRACE(kernel_logger(), "dispatch t=", ev.when, " seq=", ev.seq);
  std::uint64_t when_bits = 0;
  static_assert(sizeof(when_bits) == sizeof(ev.when));
  std::memcpy(&when_bits, &ev.when, sizeof(when_bits));
  trace_digest_ = fnv1a_mix(fnv1a_mix(trace_digest_, when_bits), ev.seq);
  if (tracer_.enabled()) {
    // Re-install the causal cursor captured when this event was scheduled:
    // records emitted by the callback chain off the record that caused it.
    Tracer::ScopedContext context(tracer_, cause);
    fn();
  } else {
    fn();
  }
  // Audit after the callback returns: between events every daemon's state is
  // quiescent, so cross-daemon invariants are meaningful.
  if (auditor_ != nullptr && dispatched_ % audit_period_ == 0) {
    auditor_->run(now_);
  }
}

Simulation::PendingEvent Simulation::take_front_event() {
  Bucket& b = buckets_[heap_.front().bucket];
  if (controller_ == nullptr) return b.items[b.next++];
  // Exploration mode: let the controller pick among the bucket's live
  // entries. drop_stale_front() guarantees the cursor entry is live, so
  // there is always at least one candidate.
  pick_candidates_.clear();
  const std::size_t size = b.items.size();
  for (std::size_t i = b.next; i < size; ++i) {
    const PendingEvent& e = b.items[i];
    if (slots_[e.slot].gen == e.gen) pick_candidates_.push_back(i);
  }
  std::size_t pick = 0;
  if (pick_candidates_.size() > 1) {
    pick = controller_->pick_event(heap_.front().when,
                                   pick_candidates_.size()) %
           pick_candidates_.size();
  }
  const std::size_t index = pick_candidates_[pick];
  const PendingEvent ev = b.items[index];
  if (index == b.next) {
    ++b.next;
  } else {
    // Out-of-FIFO pick: remove from the middle so no entry dispatches
    // twice. O(bucket) — acceptable for exploration runs only.
    b.items.erase(b.items.begin() + static_cast<std::ptrdiff_t>(index));
  }
  return ev;
}

void Simulation::run() {
  stopped_ = false;
  while (!stopped_) {
    drop_stale_front();
    if (heap_.empty()) break;
    // Copy the entry out before dispatch: the callback may append to this
    // bucket (vector reallocation) or grow the bucket slab.
    const PendingEvent ev = take_front_event();
    dispatch(ev);
  }
}

bool Simulation::run_until(Time until) {
  stopped_ = false;
  while (!stopped_) {
    drop_stale_front();
    if (heap_.empty() || heap_.front().when > until) break;
    const PendingEvent ev = take_front_event();
    dispatch(ev);
  }
  if (!stopped_ && now_ < until) now_ = until;
  // Drop cancelled stragglers at the front so pending() stays meaningful.
  drop_stale_front();
  return !heap_.empty();
}

}  // namespace condorg::sim
