#include "condorg/sim/simulation.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstring>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "condorg/sim/invariant_auditor.h"
#include "condorg/sim/schedule_controller.h"
#include "condorg/util/logging.h"

namespace condorg::sim {
namespace {
constexpr std::uint64_t kFnvPrime = 1099511628211ull;
constexpr Time kInfTime = std::numeric_limits<Time>::infinity();

// Referenced only from CONDORG_LOG_TRACE sites; the discarded-if-constexpr
// branch still names it, so it needs no preprocessor guard of its own.
[[maybe_unused]] const util::Logger& kernel_logger() {
  static const util::Logger logger("sim");
  return logger;
}

std::uint64_t fnv1a_mix(std::uint64_t digest, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    digest ^= (value >> (byte * 8)) & 0xff;
    digest *= kFnvPrime;
  }
  return digest;
}

// Calendar key for a timestamp: its bit pattern, with -0.0 folded into +0.0
// so numerically-equal times land in the same bucket (otherwise two heap
// entries could tie on `when` and the FIFO order across them would be
// unspecified). The PendingEvent still carries `when` verbatim — the digest
// sees exactly the bits that were scheduled.
std::uint64_t bucket_key(Time when) {
  if (when == 0.0) when = 0.0;  // normalize -0.0
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(when));
  std::memcpy(&bits, &when, sizeof(bits));
  return bits;
}

std::uint64_t time_bits(Time when) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(when));
  std::memcpy(&bits, &when, sizeof(bits));
  return bits;
}

// The island universe's total order over events: (when, origin queue,
// origin counter). Computable by the scheduling context alone — no global
// counter — which is what lets islands execute concurrently and still agree
// on one global dispatch order. Keys of distinct events are distinct
// because an origin never reuses a counter value.
struct DigestKey {
  Time when = 0.0;
  std::uint32_t origin = 0;
  std::uint64_t ctr = 0;

  bool operator<(const DigestKey& other) const {
    if (when != other.when) return when < other.when;
    if (origin != other.origin) return origin < other.origin;
    return ctr < other.ctr;
  }
};

// Island-mode EventId packing: queue:14 | slot+1:22 | gen:28.
constexpr std::uint32_t kMaxQueues = 1u << 14;
constexpr std::uint32_t kMaxSlots = (1u << 22) - 2;
constexpr std::uint32_t kGenMask = (1u << 28) - 1;

std::uint64_t clock_ns() {
  // Island busy/blocked profiling measures real executor cost; it feeds the
  // wall-only profile columns, never scheduling.
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          // lint-allow(wall-clock): executor profiling, not simulated time
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Window-mode dispatch sink: while an island executes a parallel window its
// dispatch keys are appended here instead of being folded into the (shared)
// digest; the coordinator merges the per-island logs in key order at the
// barrier. Thread-local so dispatch() needs no branch on who is running it.
// lint-allow(mutable-global): per-thread dispatch sink, single-owner
thread_local std::vector<DigestKey>* t_window_log = nullptr;
}  // namespace

// ---------------------------------------------------------------------------
// IslandEngine: the conservative parallel executor.
//
// One instance per island-mode Simulation, created lazily at the first run.
// It owns the worker pool, the per-queue cross-island inboxes, and the
// window/barrier loop. Queue state is only ever touched by (a) the
// coordinator between barriers or (b) the single worker executing that
// queue's island inside a window — the barrier's mutex/condvar pair provides
// the happens-before edges, so the calendars themselves need no locks.
//
// Synchronization model (conservative, LBTS-style realized as global
// windows): let T be the minimum pending key time over all islands and L the
// plan lookahead (minimum cross-island link latency). Every cross-island
// message sent by an event at time t arrives at t + latency >= T + L, so all
// events with key < (T + L, 0, 0) are safe to execute without hearing from
// any other island — that window is executed in parallel, then a barrier
// exchanges the buffered cross messages (the role null messages play in
// distributed conservative schemes). Control-queue events cap the window
// because they may touch any island's state.
// ---------------------------------------------------------------------------
struct IslandEngine {
  explicit IslandEngine(Simulation& s) : sim(s) {}
  ~IslandEngine() { shutdown(); }

  IslandEngine(const IslandEngine&) = delete;
  IslandEngine& operator=(const IslandEngine&) = delete;

  Simulation& sim;

  // --- cross-island inboxes -----------------------------------------------
  struct CrossEntry {
    Time when = 0.0;
    std::uint32_t origin = 0;
    std::uint64_t ctr = 0;
    std::function<void()> fn;
  };
  struct Inbox {
    std::mutex mu;
    std::vector<CrossEntry> entries;
  };
  // unique_ptr so growing the vector (hosts added at a barrier) never moves
  // a mutex out from under a sender.
  std::vector<std::unique_ptr<Inbox>> inboxes;
  // True only while the windowed executor is between its initial and final
  // barriers: senders inside windows must go through the inbox; everything
  // else (strict mode, setup code, control context between runs) schedules
  // directly into the target calendar.
  std::atomic<bool> use_inbox{false};
  // Recycled integration batch — the arena for cross-island handoff:
  // capacity survives across windows, so steady-state integration allocates
  // nothing beyond what the message closures themselves pin.
  std::vector<CrossEntry> batch_arena;

  // --- plan-derived layout ------------------------------------------------
  std::vector<std::vector<std::uint32_t>> members;  // island -> queue ids
  std::vector<std::uint32_t> island_of;             // queue -> island id
  std::vector<std::uint32_t> work_islands;          // non-control, non-empty
  Time lookahead = kInfTime;

  std::vector<Simulation::IslandStat> stats;
  std::vector<std::vector<DigestKey>> logs;       // per-island window logs
  std::vector<std::uint64_t> window_busy;         // per-island, this window

  // --- worker pool / barrier ----------------------------------------------
  std::vector<std::thread> workers;
  std::mutex mu;
  std::condition_variable cv_work;
  std::condition_variable cv_done;
  std::uint64_t job_seq = 0;
  std::size_t completed = 0;  // islands executed this window
  std::size_t work_size = 0;  // |work_islands| of the current window
  bool quit = false;
  // Claim word: window generation (high 32, = job_seq) | next work index
  // (low 32). Claims CAS the low half and are only valid while the high
  // half still matches the generation the claimant adopted under `mu` — a
  // straggler whose claim loop outlives its window can therefore never
  // claim (or even index work_islands for) a window it did not enter
  // through the mutex handshake, which is what makes the coordinator's
  // between-window calendar/plan mutations safe to run unlocked.
  std::atomic<std::uint64_t> claim_state{0};

  DigestKey bound{};     // current window bound (exclusive)
  DigestKey last_key{};  // last committed key (merge monotonicity check)
  bool profiling = false;

  // -------------------------------------------------------------------------

  void sync_plan() {
    const IslandPlan& plan = sim.plan_;
    const std::size_t queues = sim.queues_.size();
    if (plan.island_of_queue.size() != queues || plan.island_count == 0 ||
        plan.island_of_queue[0] != 0) {
      throw std::logic_error("island plan does not match the queue layout");
    }
    lookahead = plan.lookahead;
    std::uint32_t count = plan.island_count;
    // No positive lookahead => no safe window exists between islands:
    // collapse every host queue into one island (serial but correct).
    const bool collapse = !(lookahead > 0.0) && queues > 1;
    island_of.assign(queues, 0);
    if (collapse) {
      count = 2;
      for (std::size_t q = 1; q < queues; ++q) {
        island_of[q] = 1;
      }
    } else {
      for (std::size_t q = 1; q < queues; ++q) {
        const std::uint32_t island = plan.island_of_queue[q];
        if (island == 0 || island >= count) {
          throw std::logic_error("island plan: bad island id for host queue");
        }
        island_of[q] = island;
      }
    }
    members.assign(count, {});
    for (std::size_t q = 0; q < queues; ++q) {
      members[island_of[q]].push_back(static_cast<std::uint32_t>(q));
    }
    work_islands.clear();
    for (std::uint32_t i = 1; i < count; ++i) {
      if (!members[i].empty()) work_islands.push_back(i);
    }
    // A single work island can never receive a mid-window message from a
    // peer, so it may run unbounded by lookahead.
    if (work_islands.size() <= 1) lookahead = kInfTime;
    if (stats.size() < count) stats.resize(count);
    if (logs.size() < count) logs.resize(count);
    if (window_busy.size() < count) window_busy.resize(count, 0);
    while (inboxes.size() < queues) {
      inboxes.push_back(std::make_unique<Inbox>());
    }
  }

  // Peek the next key of one queue; false if the queue is empty.
  bool peek_key(Simulation::QueueState& q, DigestKey* out) {
    sim.drop_stale_front(q);
    if (q.heap.empty()) return false;
    const Simulation::Bucket& b = q.buckets[q.heap.front().bucket];
    const Simulation::PendingEvent& e = b.items[b.next];
    *out = DigestKey{e.when, q.slots[e.slot].origin, e.seq};
    return true;
  }

  // Coordinator-only: drain every inbox into its target calendar. Serial on
  // purpose — cross traffic is the rare path by design (that is what makes
  // islands worth having), and serial integration keeps determinism
  // trivial. Runs only at barriers, so no worker touches a calendar
  // concurrently.
  void integrate_all() {
    for (std::size_t qid = 1; qid < inboxes.size(); ++qid) {
      Inbox& ib = *inboxes[qid];
      {
        std::lock_guard<std::mutex> lk(ib.mu);
        if (ib.entries.empty()) continue;
        batch_arena.clear();
        std::swap(batch_arena, ib.entries);
        // The (cleared) previous arena becomes the inbox buffer, so both
        // sides keep their capacity.
      }
      // Arrival order from racing senders is nondeterministic; the sorted
      // bucket insert in schedule_keyed makes the calendar order depend on
      // the key alone, but sort anyway so even transient structures (bucket
      // creation order, slot assignment) are run-to-run stable.
      std::sort(batch_arena.begin(), batch_arena.end(),
                [](const CrossEntry& a, const CrossEntry& b) {
                  return DigestKey{a.when, a.origin, a.ctr} <
                         DigestKey{b.when, b.origin, b.ctr};
                });
      for (CrossEntry& e : batch_arena) {
        sim.schedule_keyed(static_cast<std::uint32_t>(qid), e.when, e.origin,
                           e.ctr, std::move(e.fn), 0);
      }
      stats[island_of[qid]].inbox_messages += batch_arena.size();
      batch_arena.clear();
    }
  }

  // Stats parity for the direct (strict/setup) cross-schedule path, so the
  // per-island inbox totals are identical whichever executor ran.
  void count_cross(std::uint32_t queue) {
    if (queue < island_of.size()) ++stats[island_of[queue]].inbox_messages;
  }

  // --- the execute barrier -------------------------------------------------

  void start_workers(std::size_t desired) {
    while (workers.size() < desired) {
      workers.emplace_back([this] { worker_main(); });
    }
  }

  void worker_main() {
    std::uint64_t seen = 0;
    std::size_t size = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lk(mu);
        cv_work.wait(lk, [&] { return quit || job_seq != seen; });
        if (quit) return;
        // Always adopt the *current* window — whichever notify woke us —
        // so the mutex acquire here orders every calendar/plan write the
        // coordinator made before publishing this generation.
        seen = job_seq;
        size = work_size;
      }
      claim_and_execute(seen, size);
    }
  }

  void claim_and_execute(std::uint64_t gen, std::size_t size) {
    const std::uint64_t want = gen << 32;
    for (;;) {
      std::uint64_t state = claim_state.load(std::memory_order_acquire);
      std::size_t k;
      for (;;) {
        if ((state & ~std::uint64_t{0xffffffff}) != want) return;  // stale
        k = static_cast<std::size_t>(state & 0xffffffff);
        if (k >= size) return;  // window fully claimed
        if (claim_state.compare_exchange_weak(state, state + 1,
                                              std::memory_order_acq_rel)) {
          break;
        }
      }
      const std::uint32_t island = work_islands[k];
      const std::uint64_t t0 = profiling ? clock_ns() : 0;
      execute_island(island);
      if (profiling) {
        const std::uint64_t spent = clock_ns() - t0;
        stats[island].busy_ns += spent;
        window_busy[island] = spent;
      }
      {
        std::lock_guard<std::mutex> lk(mu);
        if (++completed == size) cv_done.notify_all();
      }
    }
  }

  // Execute every event of `island` whose key is strictly below `bound`.
  // Exclusively owns the island's member queues for the duration.
  void execute_island(std::uint32_t island) {
    t_window_log = &logs[island];
    bool any = false;
    for (;;) {
      std::uint32_t best_q = 0;
      DigestKey best{};
      bool found = false;
      bool halted = false;
      for (const std::uint32_t qid : members[island]) {
        Simulation::QueueState& q = sim.queues_[qid];
        if (q.halted) {
          halted = true;
          break;
        }
        DigestKey k;
        if (!peek_key(q, &k)) continue;
        if (!found || k < best) {
          found = true;
          best = k;
          best_q = qid;
        }
      }
      if (halted || !found || !(best < bound)) break;
      Simulation::QueueState& q = sim.queues_[best_q];
      const Simulation::PendingEvent ev = sim.take_front_event(q);
      sim.dispatch(best_q, ev);
      any = true;
    }
    t_window_log = nullptr;
    if (any) ++stats[island].epochs;
  }

  // Fan the current window out to the workers (the coordinator
  // participates) and wait for all islands to finish. With one thread — or
  // one island — everything runs inline on the caller, no pool involved.
  void run_execute_phase() {
    if (work_islands.empty()) return;
    const std::uint64_t t0 = profiling ? clock_ns() : 0;
    const bool parallel = sim.island_threads_ > 1 && work_islands.size() > 1;
    if (!parallel) {
      // Inline execution stays off the claim word entirely: this path has
      // no end-of-window barrier, so nothing here may invite a worker in.
      for (const std::uint32_t island : work_islands) {
        const std::uint64_t s0 = profiling ? clock_ns() : 0;
        execute_island(island);
        if (profiling) {
          const std::uint64_t spent = clock_ns() - s0;
          stats[island].busy_ns += spent;
          window_busy[island] = spent;
        }
      }
    } else {
      start_workers(std::min<std::size_t>(sim.island_threads_ - 1,
                                          work_islands.size() - 1));
      {
        std::lock_guard<std::mutex> lk(mu);
        completed = 0;
        ++job_seq;
        work_size = work_islands.size();
        claim_state.store(job_seq << 32, std::memory_order_release);
      }
      cv_work.notify_all();
      claim_and_execute(job_seq, work_islands.size());
      std::unique_lock<std::mutex> lk(mu);
      cv_done.wait(lk, [&] { return completed == work_islands.size(); });
    }
    if (profiling) {
      const std::uint64_t wall = clock_ns() - t0;
      for (const std::uint32_t island : work_islands) {
        // Whatever part of the window the island did not spend executing,
        // it spent blocked on the barrier (or waiting for a worker slot) —
        // that is the lookahead-starvation signal the report surfaces.
        stats[island].blocked_ns += wall - std::min(wall, window_busy[island]);
        window_busy[island] = 0;
      }
    }
  }

  // Fold one committed dispatch key into the digest, enforcing that the
  // committed stream never moves backward in time. A time regression means
  // an island executed past its lookahead (a smaller-time event surfaced
  // after a larger one committed) — the run would not be reproducible — so
  // it is a hard error, not a diagnostic.
  //
  // Equal-time key inversions, by contrast, are legitimate: a delivery
  // handler that posts follow-up work at `now` creates a child with the
  // same `when` but its own (origin, ctr) — which may sort below the
  // parent's key even though it causally (and deterministically) executes
  // after it. Both executors commit the greedy min-front order over the
  // per-queue pop sequences, which is identical for every worker count, so
  // same-time runs need no intra-key ordering check. Cross-island causality
  // always advances time (positive link latency), so a genuine lookahead
  // violation still manifests as the time regression checked here.
  void commit_key(const DigestKey& key) {
    if (key.when < last_key.when) {
      throw std::logic_error(
          "island kernel: committed dispatch time moved backward "
          "(an island executed past its lookahead)");
    }
    last_key = key;
    sim.fold_digest(key.when, key.origin, key.ctr);
  }

  // Merge the per-island window logs in key order into the digest. Each log
  // is already key-ascending (islands execute in key order), so this is a
  // K-way merge over at most |work_islands| heads.
  void merge_logs() {
    std::size_t total = 0;
    for (const std::uint32_t island : work_islands) {
      total += logs[island].size();
    }
    if (total == 0) return;
    std::vector<std::size_t> head(logs.size(), 0);
    for (std::size_t done = 0; done < total; ++done) {
      std::uint32_t pick = 0;
      const DigestKey* pick_key = nullptr;
      for (const std::uint32_t island : work_islands) {
        const std::vector<DigestKey>& log = logs[island];
        if (head[island] >= log.size()) continue;
        const DigestKey& k = log[head[island]];
        if (pick_key == nullptr || k < *pick_key) {
          pick_key = &k;
          pick = island;
        }
      }
      commit_key(*pick_key);
      ++head[pick];
    }
    sim.dispatched_ += total;
    for (const std::uint32_t island : work_islands) {
      logs[island].clear();
    }
  }

  // --- the two island executors -------------------------------------------

  // Parallel windowed executor (no global observer armed). The calling
  // thread is the coordinator: it integrates inboxes, dispatches control
  // events at barriers, computes window bounds, and participates in
  // execution.
  void run_windows(Time until, bool bounded) {
    Simulation& s = sim;
    profiling = s.profiler().enabled();
    last_key = DigestKey{-kInfTime, 0, 0};
    const Time until_edge =
        bounded ? std::nextafter(until, kInfTime) : kInfTime;
    use_inbox.store(true, std::memory_order_release);
    for (;;) {
      integrate_all();
      if (s.planned_version_ != s.topology_version_) {
        s.refresh_plan();
        sync_plan();
      }
      DigestKey ctl, isl;
      const bool have_ctl = peek_key(s.queues_[0], &ctl);
      bool have_isl = false;
      for (const std::uint32_t island : work_islands) {
        for (const std::uint32_t qid : members[island]) {
          DigestKey k;
          if (!peek_key(s.queues_[qid], &k)) continue;
          if (!have_isl || k < isl) {
            have_isl = true;
            isl = k;
          }
        }
      }
      if (!have_ctl && !have_isl) break;
      const DigestKey& first =
          !have_isl || (have_ctl && ctl < isl) ? ctl : isl;
      if (bounded && first.when > until) break;
      if (have_ctl && (!have_isl || ctl < isl)) {
        // Control turn: the world is at a barrier and the control event may
        // touch anything — it is its own one-event window.
        const Simulation::PendingEvent ev = s.take_front_event(s.queues_[0]);
        commit_key(ctl);
        ++s.dispatched_;
        s.dispatch(0, ev);
        if (s.stopped_.load(std::memory_order_relaxed)) break;
        continue;
      }
      // Island window [isl.when, bound): safe because every cross-island
      // message sent inside it arrives no earlier than isl.when + lookahead,
      // and pending control events cap the bound.
      DigestKey b{isl.when + lookahead, 0, 0};
      if (have_ctl && ctl < b) b = ctl;
      if (DigestKey{until_edge, 0, 0} < b) b = DigestKey{until_edge, 0, 0};
      bound = b;
      ++stats[0].epochs;  // the control row doubles as the window count
      run_execute_phase();
      merge_logs();
      if (s.stopped_.load(std::memory_order_relaxed)) break;
    }
    integrate_all();  // drain stragglers so pending() stays accurate
    use_inbox.store(false, std::memory_order_release);
  }

  // Strict serialized executor: exact global key order on the calling
  // thread. Used whenever a global observer (Tracer, InvariantAuditor) is
  // armed — the observer then sees the one true stream, byte-identical for
  // every worker count by construction. Window bookkeeping is kept only so
  // stop() semantics match the parallel executor (a stopped island skips
  // ahead; everyone ends at the window edge).
  void run_strict(Time until, bool bounded) {
    Simulation& s = sim;
    profiling = false;
    last_key = DigestKey{-kInfTime, 0, 0};
    const Time until_edge =
        bounded ? std::nextafter(until, kInfTime) : kInfTime;
    use_inbox.store(false, std::memory_order_release);
    DigestKey wbound{-kInfTime, 0, 0};
    for (;;) {
      if (s.planned_version_ != s.topology_version_) {
        s.refresh_plan();
        sync_plan();
      }
      DigestKey ctl, best;
      const bool have_ctl = peek_key(s.queues_[0], &ctl);
      bool found = have_ctl;
      std::uint32_t best_q = 0;
      if (have_ctl) best = ctl;
      for (const std::uint32_t island : work_islands) {
        bool halted = false;
        for (const std::uint32_t qid : members[island]) {
          if (s.queues_[qid].halted) halted = true;
        }
        if (halted) continue;  // stopped island: idle until the window edge
        for (const std::uint32_t qid : members[island]) {
          DigestKey k;
          if (!peek_key(s.queues_[qid], &k)) continue;
          if (!found || k < best) {
            found = true;
            best = k;
            best_q = qid;
          }
        }
      }
      if (!found) break;
      if (bounded && best.when > until) break;
      if (!(best < wbound)) {
        // Window edge: a stop anywhere ends the run here, exactly like the
        // parallel executor ending after the current window.
        if (s.stopped_.load(std::memory_order_relaxed)) break;
        if (best_q == 0) {
          const Simulation::PendingEvent ev =
              s.take_front_event(s.queues_[0]);
          commit_key(best);
          ++s.dispatched_;
          s.dispatch(0, ev);
          wbound = DigestKey{-kInfTime, 0, 0};  // barrier: re-open windows
          continue;
        }
        wbound = DigestKey{best.when + lookahead, 0, 0};
        if (have_ctl && ctl < wbound) wbound = ctl;
        if (DigestKey{until_edge, 0, 0} < wbound) {
          wbound = DigestKey{until_edge, 0, 0};
        }
      }
      Simulation::QueueState& q = s.queues_[best_q];
      const Simulation::PendingEvent ev = s.take_front_event(q);
      commit_key(best);
      ++s.dispatched_;
      s.dispatch(best_q, ev);
    }
  }

  void shutdown() {
    {
      std::lock_guard<std::mutex> lk(mu);
      quit = true;
    }
    cv_work.notify_all();
    for (std::thread& t : workers) t.join();
    workers.clear();
  }
};

// ---------------------------------------------------------------------------
// Simulation
// ---------------------------------------------------------------------------

Simulation::Simulation(std::uint64_t seed) : rng_(seed) {
  queues_.resize(1);  // queue 0: the legacy global / island control queue
}

Simulation::~Simulation() = default;

Simulation::TlsContext& Simulation::tls_context() {
  // Each worker only ever reads the context it installed via ScopedQueue.
  // lint-allow(mutable-global): per-thread scheduling-context cursor
  thread_local TlsContext tls;
  return tls;
}

void Simulation::attach_auditor(InvariantAuditor* auditor,
                                std::uint64_t period) {
  auditor_ = auditor;
  audit_period_ = period > 0 ? period : 1;
}

void Simulation::set_controller(ScheduleController* controller) {
  if (controller != nullptr && island_mode_) {
    throw std::logic_error(
        "set_controller: a schedule controller requires the legacy kernel "
        "(disable CONDORG_PARALLEL / use World::set_parallel_override)");
  }
  controller_ = controller;
}

void Simulation::configure_islands(unsigned threads) {
  if (island_mode_) {  // re-configuration only adjusts the thread budget
    island_threads_ = threads == 0 ? 1 : threads;
    return;
  }
  if (dispatched_ != 0 || pending() != 0 || queues_[0].ctr != 0) {
    throw std::logic_error(
        "configure_islands: the kernel has already scheduled events in the "
        "legacy universe; island mode must be selected up front");
  }
  if (controller_ != nullptr) {
    throw std::logic_error(
        "configure_islands: incompatible with a schedule controller");
  }
  island_mode_ = true;
  island_threads_ = threads == 0 ? 1 : threads;
}

std::uint32_t Simulation::register_queue() {
  if (!island_mode_) return 0;
  if (queues_.size() >= kMaxQueues) {
    throw std::length_error("register_queue: too many island queues");
  }
  const std::uint32_t queue = static_cast<std::uint32_t>(queues_.size());
  queues_.emplace_back();
  // A host created mid-run joins at the control clock (host creation is a
  // control-context action, so this is the committed global time).
  queues_.back().local_now = queues_[0].local_now;
  notify_topology_changed();
  return queue;
}

void Simulation::set_island_plan_hook(std::function<IslandPlan()> hook) {
  plan_hook_ = std::move(hook);
  notify_topology_changed();
}

void Simulation::refresh_plan() {
  if (planned_version_ == topology_version_) return;
  if (plan_hook_) {
    plan_ = plan_hook_();
  } else {
    // No topology knowledge: every host queue nominally its own island but
    // with zero lookahead, which the engine collapses to one serial island.
    // Correct for bare-Simulation use; sim::World always installs a hook.
    plan_.island_of_queue.assign(queues_.size(), 0);
    for (std::size_t q = 1; q < queues_.size(); ++q) {
      plan_.island_of_queue[q] = static_cast<std::uint32_t>(q);
    }
    plan_.island_count = static_cast<std::uint32_t>(queues_.size());
    plan_.lookahead = 0.0;
  }
  planned_version_ = topology_version_;
}

std::size_t Simulation::pending() const {
  std::size_t total = 0;
  for (const QueueState& q : queues_) total += q.live;
  return total;
}

std::vector<Simulation::IslandStat> Simulation::island_stats() const {
  if (!island_mode_ || engine_ == nullptr) return {};
  std::vector<IslandStat> out = engine_->stats;
  for (std::size_t qid = 0;
       qid < queues_.size() && qid < engine_->island_of.size(); ++qid) {
    out[engine_->island_of[qid]].events += queues_[qid].events;
  }
  return out;
}

// 4-ary min-heap on `when`, hand-sifted with a hole instead of
// std::push_heap/pop_heap swaps: half the depth of a binary heap and one
// move per level. It only orders *distinct* timestamps (one bucket each), so
// ties are impossible and any correct heap yields the same dispatch stream.
void Simulation::heap_push(QueueState& q, BucketRef node) {
  std::size_t i = q.heap.size();
  q.heap.push_back(node);
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!q.heap[parent].after(node)) break;
    q.heap[i] = q.heap[parent];
    i = parent;
  }
  q.heap[i] = node;
}

void Simulation::heap_pop_front(QueueState& q) {
  const BucketRef last = q.heap.back();
  q.heap.pop_back();
  const std::size_t n = q.heap.size();
  if (n > 0) {
    std::size_t i = 0;
    for (;;) {
      const std::size_t first_child = (i << 2) + 1;
      if (first_child >= n) break;
      std::size_t best = first_child;
      const std::size_t end = first_child + 4 < n ? first_child + 4 : n;
      for (std::size_t c = first_child + 1; c < end; ++c) {
        if (q.heap[best].after(q.heap[c])) best = c;
      }
      if (!last.after(q.heap[best])) break;
      q.heap[i] = q.heap[best];
      i = best;
    }
    q.heap[i] = last;
  }
}

void Simulation::drop_stale_front(QueueState& q) {
  while (!q.heap.empty()) {
    Bucket& b = q.buckets[q.heap.front().bucket];
    const std::size_t size = b.items.size();
    std::size_t next = b.next;
    while (next < size &&
           q.slots[b.items[next].slot].gen != b.items[next].gen) {
      ++next;
    }
    // Every entry skipped here is a drained cancellation tombstone (the
    // only way an entry at the cursor goes stale): settle the account.
    q.tombstones -= next - b.next;
    b.next = next;
    if (next < size) return;  // front bucket has a live event at its cursor
    // Fully drained: retire the bucket (keeping its capacity for reuse).
    q.bucket_of.erase(b.key);
    b.items.clear();
    b.next = 0;
    q.free_buckets.push_back(q.heap.front().bucket);
    heap_pop_front(q);
  }
}

EventId Simulation::make_id(std::uint32_t queue, std::uint32_t slot,
                            std::uint32_t gen) const {
  if (!island_mode_) {
    return (static_cast<EventId>(slot) + 1) << 32 | gen;
  }
  return (static_cast<EventId>(queue) << 50) |
         ((static_cast<EventId>(slot) + 1) << 28) |
         static_cast<EventId>(gen & kGenMask);
}

Simulation::EventRecord* Simulation::record_for(EventId id,
                                                std::uint32_t* queue_out) {
  if (!island_mode_) {
    const std::uint64_t hi = id >> 32;
    QueueState& q = queues_[0];
    if (hi == 0 || hi > q.slots.size()) return nullptr;
    EventRecord& rec = q.slots[static_cast<std::size_t>(hi - 1)];
    if (rec.gen != static_cast<std::uint32_t>(id) || !rec.fn) return nullptr;
    *queue_out = 0;
    return &rec;
  }
  const std::uint32_t queue = static_cast<std::uint32_t>(id >> 50);
  const std::uint64_t slot_p1 = (id >> 28) & ((1ull << 22) - 1);
  const std::uint32_t gen = static_cast<std::uint32_t>(id & kGenMask);
  if (queue >= queues_.size()) return nullptr;
  QueueState& q = queues_[queue];
  if (slot_p1 == 0 || slot_p1 > q.slots.size()) return nullptr;
  EventRecord& rec = q.slots[static_cast<std::size_t>(slot_p1 - 1)];
  if ((rec.gen & kGenMask) != gen || !rec.fn) return nullptr;
  *queue_out = queue;
  return &rec;
}

EventId Simulation::schedule_at(Time when, std::function<void()> fn) {
  return schedule_on_queue(context_queue(), when, std::move(fn));
}

EventId Simulation::schedule_on_queue(std::uint32_t queue, Time when,
                                      std::function<void()> fn) {
  if (!fn) throw std::invalid_argument("schedule_at: null callback");
  const std::uint32_t origin = context_queue();
  QueueState& oq = queues_[origin];
  if (when < oq.local_now) when = oq.local_now;  // no scheduling into the past
  return schedule_keyed(queue, when, origin, ++oq.ctr, std::move(fn),
                        tracer_.enabled() ? tracer_.context() : 0);
}

void Simulation::schedule_cross(std::uint32_t queue, Time when,
                                std::function<void()> fn) {
  if (!fn) throw std::invalid_argument("schedule_cross: null callback");
  const std::uint32_t origin = context_queue();
  QueueState& oq = queues_[origin];
  if (when < oq.local_now) when = oq.local_now;
  const std::uint64_t ctr = ++oq.ctr;
  if (island_mode_ && engine_ != nullptr &&
      engine_->use_inbox.load(std::memory_order_acquire) &&
      // Queues younger than the engine's plan (host added at this barrier)
      // are not executed by any worker until the plan resyncs, so the
      // direct insert below is race-free for them.
      queue < engine_->island_of.size() && origin < engine_->island_of.size() &&
      engine_->island_of[queue] != engine_->island_of[origin]) {
    // Mid-window, genuinely cross-island: hand the delivery to the target
    // island's inbox; it is integrated at a barrier. The key travels with
    // it, so calendar order is independent of which barrier integrates it.
    // (Same-island sends fall through to the direct insert below — the
    // calling worker owns both calendars, and a low-latency local message
    // must stay executable inside the current window to keep the committed
    // stream key-ascending.)
    IslandEngine::Inbox& ib = *engine_->inboxes[queue];
    std::lock_guard<std::mutex> lk(ib.mu);
    ib.entries.push_back(
        IslandEngine::CrossEntry{when, origin, ctr, std::move(fn)});
    return;
  }
  // Quiescent (setup code, control context, strict executor) or
  // same-island: schedule straight into the target calendar under the key.
  schedule_keyed(queue, when, origin, ctr, std::move(fn),
                 tracer_.enabled() ? tracer_.context() : 0);
  if (island_mode_ && engine_ != nullptr &&
      queue < engine_->island_of.size() &&
      origin < engine_->island_of.size() &&
      engine_->island_of[queue] != engine_->island_of[origin]) {
    engine_->count_cross(queue);  // stats parity with the inbox path
  }
}

EventId Simulation::schedule_keyed(std::uint32_t queue, Time when,
                                   std::uint32_t origin, std::uint64_t ctr,
                                   std::function<void()> fn, RecordId cause) {
  QueueState& q = queues_[queue];
  if (when < q.local_now) when = q.local_now;
  std::uint32_t slot;
  if (q.free_slots.empty()) {
    slot = static_cast<std::uint32_t>(q.slots.size());
    if (island_mode_ && slot >= kMaxSlots) {
      throw std::length_error("schedule: too many live events on one queue");
    }
    q.slots.emplace_back();
  } else {
    slot = q.free_slots.back();
    q.free_slots.pop_back();
  }
  EventRecord& rec = q.slots[slot];
  rec.fn = std::move(fn);
  rec.cause = cause;
  rec.origin = origin;
  const std::uint32_t gen = rec.gen;

  const std::uint64_t key = bucket_key(when);
  const auto [it, inserted] = q.bucket_of.try_emplace(key, 0);
  std::uint32_t bi;
  if (inserted) {
    if (q.free_buckets.empty()) {
      bi = static_cast<std::uint32_t>(q.buckets.size());
      q.buckets.emplace_back();
    } else {
      bi = q.free_buckets.back();
      q.free_buckets.pop_back();
    }
    q.buckets[bi].key = key;
    it->second = bi;
    heap_push(q, BucketRef{when, bi});
  } else {
    bi = it->second;
  }
  Bucket& b = q.buckets[bi];
  const PendingEvent entry{when, ctr, slot, gen};
  if (!island_mode_) {
    // Legacy: origin is constant and ctr is the global seq, so appends are
    // already in key order — exactly the pre-island kernel's behavior.
    b.items.push_back(entry);
  } else {
    // Island mode: keep the *unexecuted* tail of the bucket (origin, ctr)-
    // ascending. Appends still dominate (one live comparison); an insert
    // before the tail happens when a barrier-integrated delivery from a
    // higher-origin queue already sits at this timestamp. Positions before
    // the drain cursor are untouchable — stopping the slide there also
    // places a same-time self-post (a handler posting follow-up work at
    // `now`) after the already-executed event that caused it, which is the
    // causal order both executors commit.
    std::size_t pos = b.items.size();
    while (pos > b.next) {
      const PendingEvent& prev = b.items[pos - 1];
      if (q.slots[prev.slot].gen == prev.gen) {  // live entry: compare keys
        const std::uint32_t prev_origin = q.slots[prev.slot].origin;
        if (prev_origin < origin ||
            (prev_origin == origin && prev.seq < ctr)) {
          break;
        }
      }
      --pos;  // stale entries are order-neutral: slide past them
    }
    b.items.insert(b.items.begin() + static_cast<std::ptrdiff_t>(pos), entry);
  }
  ++q.live;
  return make_id(queue, slot, gen);
}

bool Simulation::cancel(EventId id) {
  // kInvalidEvent carries no owning queue (it decodes to queue 0), so it
  // must short-circuit before the island police below — daemons routinely
  // cancel never-armed timer handles (e.g. a Startd whose io_interval is
  // disabled).
  if (id == kInvalidEvent) return false;
  if (island_mode_) {
    // Police before record_for: the owning queue is encoded in the id, and
    // even *reading* another island's slot array mid-window is a race. A
    // cancel reaching across islands would race with the target's dispatch
    // — it is exactly the cross-host state access the partition contract
    // forbids, so fail loudly.
    const std::uint32_t owner = static_cast<std::uint32_t>(id >> 50);
    const std::uint32_t context = context_queue();
    if (context != owner && context != 0) {
      throw std::logic_error(
          "cancel: event belongs to another island's queue");
    }
  }
  std::uint32_t queue = 0;
  EventRecord* rec = record_for(id, &queue);
  if (rec == nullptr) return false;
  QueueState& q = queues_[queue];
  rec->fn = nullptr;
  ++rec->gen;  // invalidates the pending entry and any outstanding id copy
  q.free_slots.push_back(static_cast<std::uint32_t>(rec - q.slots.data()));
  --q.live;
  ++q.tombstones;  // buried entry; settled when the lazy deletion drains it
  return true;
}

void Simulation::fold_digest(Time when, std::uint32_t origin,
                             std::uint64_t ctr) {
  const std::uint64_t bits = time_bits(when);
  if (island_mode_) {
    trace_digest_ = fnv1a_mix(
        fnv1a_mix(fnv1a_mix(trace_digest_, bits), origin), ctr);
  } else {
    trace_digest_ = fnv1a_mix(fnv1a_mix(trace_digest_, bits), ctr);
  }
}

void Simulation::dispatch(std::uint32_t queue, const PendingEvent& ev) {
  QueueState& q = queues_[queue];
  EventRecord& rec = q.slots[ev.slot];
  // Move the handler out and retire the slot before invoking: the callback
  // may schedule (reusing this slot under a fresh generation) or cancel
  // other events.
  std::function<void()> fn = std::move(rec.fn);
  const RecordId cause = rec.cause;
  const std::uint32_t origin = rec.origin;
  rec.fn = nullptr;
  rec.cause = 0;
  rec.origin = 0;
  ++rec.gen;
  q.free_slots.push_back(ev.slot);
  --q.live;
  q.local_now = ev.when;
  ++q.events;
  CONDORG_LOG_TRACE(kernel_logger(), "dispatch t=", ev.when, " seq=", ev.seq);
  if (t_window_log != nullptr) {
    // Parallel window: the coordinator folds the merged stream in key order
    // at the barrier.
    t_window_log->push_back(DigestKey{ev.when, origin, ev.seq});
  } else if (!island_mode_) {
    ++dispatched_;
    fold_digest(ev.when, origin, ev.seq);
  }
  // else: island strict/control dispatch — the engine committed the key
  // (monotonicity-checked) before calling us.
  ScopedQueue context(this, queue);
  if (tracer_.enabled()) {
    // Re-install the causal cursor captured when this event was scheduled:
    // records emitted by the callback chain off the record that caused it.
    Tracer::ScopedContext tracer_context(tracer_, cause);
    fn();
  } else {
    fn();
  }
  // Audit after the callback returns: between events every daemon's state is
  // quiescent, so cross-daemon invariants are meaningful.
  if (auditor_ != nullptr && dispatched_ % audit_period_ == 0) {
    auditor_->run(q.local_now);
  }
}

Simulation::PendingEvent Simulation::take_front_event(QueueState& q) {
  Bucket& b = q.buckets[q.heap.front().bucket];
  if (controller_ == nullptr) return b.items[b.next++];
  // Exploration mode: let the controller pick among the bucket's live
  // entries. drop_stale_front() guarantees the cursor entry is live, so
  // there is always at least one candidate.
  q.pick_candidates.clear();
  const std::size_t size = b.items.size();
  for (std::size_t i = b.next; i < size; ++i) {
    const PendingEvent& e = b.items[i];
    if (q.slots[e.slot].gen == e.gen) q.pick_candidates.push_back(i);
  }
  std::size_t pick = 0;
  if (q.pick_candidates.size() > 1) {
    pick = controller_->pick_event(q.heap.front().when,
                                   q.pick_candidates.size()) %
           q.pick_candidates.size();
  }
  const std::size_t index = q.pick_candidates[pick];
  const PendingEvent ev = b.items[index];
  if (index == b.next) {
    ++b.next;
  } else {
    // Out-of-FIFO pick: remove from the middle so no entry dispatches
    // twice. O(bucket) — acceptable for exploration runs only.
    b.items.erase(b.items.begin() + static_cast<std::ptrdiff_t>(index));
  }
  return ev;
}

void Simulation::run_legacy(Time until, bool bounded) {
  stopped_.store(false, std::memory_order_relaxed);
  QueueState& q = queues_[0];
  while (!stopped_.load(std::memory_order_relaxed)) {
    drop_stale_front(q);
    if (q.heap.empty()) break;
    if (bounded && q.heap.front().when > until) break;
    // Copy the entry out before dispatch: the callback may append to this
    // bucket (vector reallocation) or grow the bucket slab.
    const PendingEvent ev = take_front_event(q);
    dispatch(0, ev);
  }
  if (bounded) {
    if (!stopped_.load(std::memory_order_relaxed) && q.local_now < until) {
      q.local_now = until;
    }
    // Drop cancelled stragglers at the front so pending() stays meaningful.
    drop_stale_front(q);
  }
}

void Simulation::run_islands(Time until, bool bounded) {
  if (controller_ != nullptr) {
    throw std::logic_error("island mode cannot run under a controller");
  }
  if (engine_ == nullptr) engine_ = std::make_unique<IslandEngine>(*this);
  refresh_plan();
  engine_->sync_plan();
  for (QueueState& q : queues_) q.halted = false;
  stopped_.store(false, std::memory_order_relaxed);
  // A global observer (Tracer / auditor) must see the one true stream from
  // one thread; otherwise run the parallel windowed executor — including
  // for N=1, so every thread count runs the same algorithm.
  if (tracer_.enabled() || auditor_ != nullptr) {
    engine_->run_strict(until, bounded);
  } else {
    engine_->run_windows(until, bounded);
  }
  if (bounded) {
    if (!stopped_.load(std::memory_order_relaxed)) {
      for (QueueState& q : queues_) {
        if (q.local_now < until) q.local_now = until;
      }
    }
    for (QueueState& q : queues_) drop_stale_front(q);
  }
  if (profiler_.enabled()) {
    // Quiescent epilogue: export the per-island execution summary so
    // condorg_report --profile can show where the parallel run spent its
    // time (events vs barrier waits).
    std::vector<Profiler::IslandRow> rows;
    for (const IslandStat& st : island_stats()) {
      Profiler::IslandRow row;
      row.events = st.events;
      row.inbox_messages = st.inbox_messages;
      row.epochs = st.epochs;
      row.blocked_ns = st.blocked_ns;
      row.busy_ns = st.busy_ns;
      rows.push_back(row);
    }
    profiler_.set_island_rows(std::move(rows));
  }
}

void Simulation::run() {
  if (island_mode_) {
    run_islands(kInfTime, false);
  } else {
    run_legacy(kInfTime, false);
  }
}

bool Simulation::run_until(Time until) {
  if (island_mode_) {
    run_islands(until, true);
  } else {
    run_legacy(until, true);
  }
  return pending() != 0;
}

void Simulation::stop() {
  stopped_.store(true, std::memory_order_relaxed);
  if (island_mode_) {
    const TlsContext& tls = tls_context();
    if (tls.sim == this && tls.queue != 0) {
      // Halt the calling island immediately; the other islands finish the
      // window (the committed window content is what keeps the digest
      // independent of the worker count).
      queues_[tls.queue].halted = true;
    }
  }
}

}  // namespace condorg::sim
