#include "condorg/sim/tracer.h"

#include "condorg/sim/simulation.h"
#include "condorg/util/json.h"

namespace condorg::sim {
namespace {

constexpr std::uint64_t kFnvPrime = 1099511628211ull;

const char* to_string(TraceRecord::Kind kind) {
  switch (kind) {
    case TraceRecord::Kind::kSpanBegin:
      return "span_begin";
    case TraceRecord::Kind::kSpanEnd:
      return "span_end";
    case TraceRecord::Kind::kEvent:
      return "event";
  }
  return "?";
}

}  // namespace

std::string TraceRecord::to_json() const {
  // Hand-rolled in field order (not sorted-key JsonValue): a trace line
  // reads submit-to-completion left to right, and the fixed order is part of
  // the byte-stable JSONL contract documented in DESIGN.md.
  std::string out = "{\"t\":";
  out += util::JsonValue::number_to_string(t);
  out += ",\"kind\":\"";
  out += to_string(kind);
  out += "\",\"name\":\"";
  out += util::JsonValue::escape(name);
  out += "\"";
  if (span != 0) {
    out += ",\"span\":";
    out += std::to_string(span);
  }
  if (parent != 0) {
    out += ",\"parent\":";
    out += std::to_string(parent);
  }
  if (job != 0) {
    out += ",\"job\":";
    out += std::to_string(job);
  }
  out += ",\"host\":\"";
  out += util::JsonValue::escape(host);
  out += "\",\"epoch\":";
  out += std::to_string(epoch);
  if (!status.empty()) {
    out += ",\"status\":\"";
    out += util::JsonValue::escape(status);
    out += "\"";
  }
  if (!detail.empty()) {
    out += ",\"detail\":\"";
    out += util::JsonValue::escape(detail);
    out += "\"";
  }
  out += ",\"id\":";
  out += std::to_string(id);
  if (cause != 0) {
    out += ",\"cause\":";
    out += std::to_string(cause);
  }
  out += "}";
  return out;
}

std::optional<TraceRecord> TraceRecord::from_json(std::string_view line) {
  const std::optional<util::JsonValue> parsed = util::JsonValue::parse(line);
  if (!parsed || !parsed->is_object()) return std::nullopt;
  const auto text = [&parsed](const char* key) {
    const util::JsonValue* value = parsed->find(key);
    return value != nullptr && value->is_string() ? value->as_string()
                                                  : std::string();
  };
  TraceRecord record;
  record.t = parsed->number_at("t");
  const std::string kind = text("kind");
  if (kind == "span_begin") {
    record.kind = Kind::kSpanBegin;
  } else if (kind == "span_end") {
    record.kind = Kind::kSpanEnd;
  } else if (kind == "event") {
    record.kind = Kind::kEvent;
  } else {
    return std::nullopt;
  }
  record.span = static_cast<SpanId>(parsed->number_at("span"));
  record.parent = static_cast<SpanId>(parsed->number_at("parent"));
  record.job = static_cast<std::uint64_t>(parsed->number_at("job"));
  record.name = text("name");
  record.host = text("host");
  record.epoch = static_cast<Epoch>(parsed->number_at("epoch"));
  record.status = text("status");
  record.detail = text("detail");
  record.id = static_cast<RecordId>(parsed->number_at("id"));
  record.cause = static_cast<RecordId>(parsed->number_at("cause"));
  return record;
}

void Tracer::push(TraceRecord record) {
  record.id = next_record_++;
  record.cause = context_;
  // Advance the causal cursor: within one dispatch, later records chain off
  // earlier ones, and the kernel snapshots the cursor into every event
  // scheduled from here on.
  context_ = record.id;
  const std::string line = record.to_json();
  for (const char c : line) {
    digest_ ^= static_cast<unsigned char>(c);
    digest_ *= kFnvPrime;
  }
  records_.push_back(std::move(record));
}

SpanId Tracer::begin_span(std::string_view name, std::uint64_t job,
                          std::string_view host, Epoch epoch, SpanId parent,
                          std::string_view detail) {
  if (!enabled_) return 0;
  const SpanId span = next_span_++;
  TraceRecord record;
  record.t = sim_.now();
  record.kind = TraceRecord::Kind::kSpanBegin;
  record.span = span;
  record.parent = parent;
  record.job = job;
  record.name = std::string(name);
  record.host = std::string(host);
  record.epoch = epoch;
  record.detail = std::string(detail);
  open_spans_.emplace(span, records_.size());
  push(std::move(record));
  return span;
}

void Tracer::end_span(SpanId span, std::string_view status,
                      std::string_view detail) {
  if (!enabled_ || span == 0) return;
  const auto it = open_spans_.find(span);
  if (it == open_spans_.end()) return;  // unknown or already closed
  const TraceRecord& begin = records_[it->second];
  TraceRecord record;
  record.t = sim_.now();
  record.kind = TraceRecord::Kind::kSpanEnd;
  record.span = span;
  record.parent = begin.parent;
  record.job = begin.job;
  record.name = begin.name;
  record.host = begin.host;
  record.epoch = begin.epoch;
  record.status = std::string(status);
  record.detail = std::string(detail);
  open_spans_.erase(it);
  push(std::move(record));
}

void Tracer::event(std::string_view name, std::uint64_t job,
                   std::string_view host, Epoch epoch,
                   std::string_view detail) {
  if (!enabled_) return;
  TraceRecord record;
  record.t = sim_.now();
  record.kind = TraceRecord::Kind::kEvent;
  record.job = job;
  record.name = std::string(name);
  record.host = std::string(host);
  record.epoch = epoch;
  record.detail = std::string(detail);
  push(std::move(record));
}

SpanId Tracer::begin_job(std::uint64_t job, std::string_view host,
                         Epoch epoch, std::string_view detail) {
  if (!enabled_) return 0;
  RootInfo& root = roots_[RootKey(std::string(host), job)];
  ++root.begins;
  if (root.begins > 1) {
    // Duplicate submit for an id is itself an invariant violation; record
    // the begin (the auditor will flag the root) but keep the first span.
    begin_span("job", job, host, epoch, /*parent=*/0, detail);
    return root.span;
  }
  root.span = begin_span("job", job, host, epoch, /*parent=*/0, detail);
  return root.span;
}

void Tracer::end_job(std::uint64_t job, std::string_view host,
                     std::string_view status, std::string_view detail) {
  if (!enabled_) return;
  const auto it = roots_.find(RootKey(std::string(host), job));
  if (it == roots_.end()) return;
  ++it->second.ends;
  if (it->second.ends == 1) end_span(it->second.span, status, detail);
}

SpanId Tracer::job_root(std::string_view host, std::uint64_t job) const {
  const auto it = roots_.find(RootKey(std::string(host), job));
  return it == roots_.end() ? 0 : it->second.span;
}

Tracer::RootState Tracer::job_root_state(std::string_view host,
                                         std::uint64_t job) const {
  const auto it = roots_.find(RootKey(std::string(host), job));
  if (it == roots_.end()) return RootState::kNone;
  const RootInfo& root = it->second;
  if (root.begins > 1 || root.ends > 1) return RootState::kDuplicate;
  return root.ends == 1 ? RootState::kClosed : RootState::kOpen;
}

std::vector<std::tuple<std::string, std::uint64_t, Tracer::RootState>>
Tracer::root_states() const {
  std::vector<std::tuple<std::string, std::uint64_t, RootState>> out;
  out.reserve(roots_.size());
  for (const auto& [key, root] : roots_) {
    RootState state = RootState::kOpen;
    if (root.begins > 1 || root.ends > 1) {
      state = RootState::kDuplicate;
    } else if (root.ends == 1) {
      state = RootState::kClosed;
    }
    out.emplace_back(key.first, key.second, state);
  }
  return out;
}

std::vector<double> Tracer::paired_event_latencies(
    std::string_view begin_name, std::string_view end_name) const {
  std::map<std::uint64_t, Time> begun;  // job -> begin time
  std::vector<double> latencies;
  for (const TraceRecord& record : records_) {
    if (record.kind != TraceRecord::Kind::kEvent) continue;
    if (record.name == begin_name) {
      begun.emplace(record.job, record.t);  // keep the first begin
    } else if (record.name == end_name) {
      const auto it = begun.find(record.job);
      if (it != begun.end()) {
        latencies.push_back(record.t - it->second);
        begun.erase(it);
      }
    }
  }
  return latencies;
}

std::string Tracer::to_jsonl() const {
  std::string out;
  for (const TraceRecord& record : records_) {
    out += record.to_json();
    out.push_back('\n');
  }
  return out;
}

bool Tracer::write_jsonl(const std::string& path) const {
  return util::write_text_file(path, to_jsonl());
}

}  // namespace condorg::sim
