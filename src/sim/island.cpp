#include "condorg/sim/island.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "condorg/sim/network.h"

namespace condorg::sim {
namespace {
// Union-find over host indices; path-halving, union by index order (the
// smaller root wins) so the resulting components are independent of merge
// order — the plan must be a pure function of the topology.
std::size_t find_root(std::vector<std::size_t>& parent, std::size_t i) {
  while (parent[i] != i) {
    parent[i] = parent[parent[i]];
    i = parent[i];
  }
  return i;
}

void unite(std::vector<std::size_t>& parent, std::size_t a, std::size_t b) {
  a = find_root(parent, a);
  b = find_root(parent, b);
  if (a == b) return;
  if (b < a) std::swap(a, b);
  parent[b] = a;
}
}  // namespace

IslandPlan IslandPlanner::build(const Network& net,
                                const std::vector<std::uint32_t>& queue_of_host,
                                const std::vector<std::string>& host_names,
                                double merge_threshold) {
  const std::size_t hosts = host_names.size();
  IslandPlan plan;
  std::uint32_t max_queue = 0;
  for (const std::uint32_t q : queue_of_host) max_queue = std::max(max_queue, q);
  plan.island_of_queue.assign(static_cast<std::size_t>(max_queue) + 1, 0);

  std::unordered_map<std::string, std::size_t> index_of;
  index_of.reserve(hosts);
  for (std::size_t i = 0; i < hosts; ++i) index_of.emplace(host_names[i], i);

  // Hosts joined by a link that offers no lookahead must advance in
  // lockstep: group them. Only explicitly configured links can undercut the
  // threshold — the default link config applies to every unconfigured pair,
  // so if *it* offers no lookahead there is no safe cut anywhere.
  std::vector<std::size_t> parent(hosts);
  std::iota(parent.begin(), parent.end(), std::size_t{0});
  const bool default_merges = net.default_link().latency <= merge_threshold;
  if (default_merges) {
    for (std::size_t i = 1; i < hosts; ++i) unite(parent, 0, i);
  } else {
    for (const auto& [pair, cfg] : net.links()) {
      if (cfg.latency > merge_threshold) continue;
      const auto a = index_of.find(pair.first);
      const auto b = index_of.find(pair.second);
      if (a == index_of.end() || b == index_of.end()) continue;
      unite(parent, a->second, b->second);
    }
  }

  // Number islands 1..K in first-appearance order over the (sorted, hence
  // deterministic) host list; island 0 stays the control queue's.
  std::vector<std::uint32_t> island_of_host(hosts, 0);
  std::unordered_map<std::size_t, std::uint32_t> island_of_root;
  std::uint32_t next_island = 1;
  for (std::size_t i = 0; i < hosts; ++i) {
    const std::size_t root = find_root(parent, i);
    const auto [it, inserted] = island_of_root.emplace(root, next_island);
    if (inserted) ++next_island;
    island_of_host[i] = it->second;
    plan.island_of_queue[queue_of_host[i]] = it->second;
  }
  plan.island_count = next_island;

  // Conservative lookahead: the minimum latency any cross-island message
  // can experience. Every unconfigured pair may talk at the default link,
  // so that is the ceiling; explicit cross-island links may undercut it.
  Time lookahead = net.default_link().latency;
  for (const auto& [pair, cfg] : net.links()) {
    const auto a = index_of.find(pair.first);
    const auto b = index_of.find(pair.second);
    if (a == index_of.end() || b == index_of.end()) continue;
    if (island_of_host[a->second] == island_of_host[b->second]) continue;
    lookahead = std::min(lookahead, cfg.latency);
  }
  plan.lookahead = plan.island_count > 2 ? lookahead : net.default_link().latency;
  if (!(plan.lookahead > 0.0)) plan.lookahead = 0.0;  // engine goes serial
  return plan;
}

}  // namespace condorg::sim
