// Kernel profiler: measured dispatch counts, handler cost, and the
// cross-host traffic matrix.
//
// PR 6's partition analyzer classifies the island-cut message types
// *statically*; the Profiler measures the same boundary dynamically. When
// armed it counts every Network delivery per (destination host, daemon,
// message type) and every Host::post timer fire per host, accumulating the
// real (wall-clock) nanoseconds each handler burned — the only place in
// src/ allowed to read the host clock, because it measures the simulator
// itself, never simulated behavior. The per-(from host, to host, type)
// aggregation is the traffic matrix an island partitioning would cut;
// tools/condorg_profile_check cross-checks it against the GRAM/GASS/MDS/GSI
// classification in build/partition_report.json.
//
// Like the Tracer and DetSan, the machinery is always compiled in and costs
// one predictable branch when disarmed; sim::World arms it from the
// CONDORG_PROFILE environment variable. Counts and bytes are fully
// deterministic (same seed, same matrix); wall-clock columns are not, so
// to_json(include_wall=false) omits them for byte-stable exports.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "condorg/sim/message.h"
#include "condorg/util/json.h"

namespace condorg::sim {

class Profiler {
 public:
  Profiler() = default;

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Deterministic per-delivery accumulation (count + bytes), plus the
  /// measured wall-clock cost of the handler invocation.
  struct Cell {
    std::uint64_t count = 0;
    std::uint64_t bytes = 0;
    std::uint64_t wall_ns = 0;
  };
  /// (from host, to host, daemon, message type). The daemon is the
  /// destination service with per-instance suffixes folded (one JobManager
  /// service exists per contact; the matrix wants the daemon family).
  using MessageKey = std::tuple<std::string, std::string, std::string,
                                std::string>;

  /// Record one delivered message whose handler burned `wall_ns`.
  void record_message(const Message& message, std::uint64_t wall_ns);
  /// Record one Host::post / post_any_epoch timer fire on `host`.
  void record_timer(const std::string& host, std::uint64_t wall_ns);

  /// Monotonic host-clock nanoseconds (for the enabled-path hooks only).
  static std::uint64_t clock_ns();

  /// "gram.jm.<contact>" -> "gram.jm", everything else unchanged.
  static std::string daemon_family(const std::string& service);

  const std::map<MessageKey, Cell>& messages() const { return messages_; }
  const std::map<std::string, Cell>& timers() const { return timers_; }

  /// Message types observed between two *distinct* hosts, aggregated over
  /// host pairs — the dynamic side of the island-cut classification.
  std::map<std::string, Cell> cross_host_types() const;

  /// One row per island of the parallel kernel, pushed by the Simulation
  /// when a windowed run finishes. events/inbox/epochs are deterministic;
  /// the blocked/busy columns are wall clock and gated on include_wall.
  struct IslandRow {
    std::uint64_t events = 0;
    std::uint64_t inbox_messages = 0;
    std::uint64_t epochs = 0;
    std::uint64_t blocked_ns = 0;
    std::uint64_t busy_ns = 0;
  };
  void set_island_rows(std::vector<IslandRow> rows);
  const std::vector<IslandRow>& island_rows() const { return island_rows_; }

  /// Full export: dispatch table per (host, daemon, type), timer table per
  /// host, and the from->to traffic matrix. Deterministic unless
  /// include_wall adds the measured nanosecond columns.
  util::JsonValue to_json(bool include_wall) const;

 private:
  // Island workers record concurrently; the lock is taken only on the
  // armed path (CONDORG_PROFILE=1). Aggregation is commutative sums into
  // ordered maps, so the final tables are identical for every worker
  // interleaving — the determinism contract of to_json(false) survives
  // parallel runs. Readers (accessors, to_json) run quiescent.
  mutable std::mutex mu_;
  bool enabled_ = false;
  std::map<MessageKey, Cell> messages_;
  std::map<std::string, Cell> timers_;
  std::vector<IslandRow> island_rows_;  // written quiescent (run epilogue)
};

}  // namespace condorg::sim
