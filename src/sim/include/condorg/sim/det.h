// Determinism sanitizer (DetSan): dynamic partition-safety checking.
//
// The grid in the paper is partitionable by construction — each user's
// agent (Schedd, GridManager, CredentialManager, personal Collector/
// Negotiator) lives on the submit host, each site's Gatekeeper/JobManager/
// StagingCache on the site front-end, and they interact only through
// sim::Network messages. ROADMAP item 2 (sharding the calendar-queue
// kernel into conservatively-synchronized islands) depends on that
// property actually holding in the code: one direct cross-host method
// call on daemon state would break digest-identical island parallelism.
//
// DetSan verifies the property at runtime. The kernel stamps the host of
// the currently-dispatching event into a thread-local (ScopedHost, set by
// Host::post wrappers, Network delivery, and crash/boot callbacks), and
// every daemon state member wrapped in det::HostLocal<T> asserts on
// access that the accessor's host matches the owner. Driver, test, and
// harness code runs with a null current host and is always allowed — the
// invariant is about event-context access, which is exactly what island
// parallelism would distribute. Ownership migration (e.g. state handed to
// another host through a message) must be declared with handoff().
//
// The check itself is one predictable branch on a process-wide flag, so
// the machinery is always compiled in; `cmake -DCONDORG_DETSAN=ON` (or
// the CONDORG_DETSAN=1 environment variable, read by sim::World) arms it.
// Violations are collected, not fatal: exploration scenarios fold them
// into RunOutcome::violations so the Explorer can replay a violating
// schedule as a deterministic counterexample.
//
// The static side of the same contract lives in
// tools/analyze/condorg_partition.py, which reads the
// CONDORG_HOST_LOCAL() class annotations below to build the
// state-ownership map and the island-cut graph (partition_report.json).
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace condorg::sim {
class Host;
}  // namespace condorg::sim

namespace condorg::det {

/// Class-level partition annotation, consumed by the static analyzer.
/// Tag values name the deployment partition of the owning host:
///   "user"    — the submit host (agent daemons, personal pool, GASS server)
///   "site"    — a site front-end (Gatekeeper, JobManager, StagingCache)
///   "central" — shared infrastructure hosts (GIIS directory, MyProxy)
#define CONDORG_HOST_LOCAL(partition) \
  static constexpr const char* kCondorgPartition = (partition)

/// One recorded ownership violation. `when` is the owner host's clock at
/// the moment of access; owner/accessor are host names ("" for a null
/// accessor, which cannot happen — null contexts are always allowed).
struct Violation {
  double when = 0.0;
  std::string owner;
  std::string accessor;
  std::string label;

  /// Deterministic one-line rendering, stable across runs of one schedule.
  std::string format() const;
};

namespace detail {
// Process-wide arm flag; the per-thread current-host stamp lives entirely
// inside det.cpp (it is thread_local by design — under the PR 7 island
// scheduler each worker thread dispatches events for its own island and
// stamps independently — and confining it to one TU keeps every access on
// the direct TLS path, which GCC's UBSan mis-flags through the cross-TU
// wrapper). The disarmed fast path touches only this plain bool.
// lint-allow(mutable-global): detsan arm flag (definition in det.cpp)
extern bool g_enabled;
/// Stamp `host` as the dispatching host; returns the previous stamp.
const sim::Host* swap_current(const sim::Host* host);
/// Armed-path ownership check: records a violation when the current
/// stamp is non-null and differs from `owner`.
void check_slow(const sim::Host* owner, const char* label);
}  // namespace detail

inline bool enabled() { return detail::g_enabled; }
void set_enabled(bool on);
/// Arms DetSan when the CONDORG_DETSAN environment variable is set to a
/// non-empty value other than "0". Returns the resulting enabled state.
bool arm_from_env();

/// Host of the event currently being dispatched; nullptr outside event
/// context (driver, tests, harness probes).
const sim::Host* current_host();

/// Drain collected violations (at most kMaxRecorded are kept; the total
/// count keeps incrementing past the cap). Resets both.
std::vector<Violation> take_violations();
/// Violations recorded since the last take_violations(), including any
/// dropped past the storage cap.
std::size_t violation_count();

/// CLI epilogue: print collected violations to stderr (each line prefixed
/// with `what`), drain them, and return how many were recorded. A nonzero
/// return is a partition-safety failure the caller should exit on.
std::size_t report(const char* what);

/// RAII stamp of the dispatching host. The kernel wrap points (Host::post,
/// Network delivery, crash/boot callbacks) install one; harness code that
/// must read cross-host state (e.g. the Explorer's state probe) installs
/// ScopedHost(nullptr) to run privileged.
class ScopedHost {
 public:
  explicit ScopedHost(const sim::Host* host)
      : previous_(detail::swap_current(host)) {}
  ~ScopedHost() { detail::swap_current(previous_); }

  ScopedHost(const ScopedHost&) = delete;
  ScopedHost& operator=(const ScopedHost&) = delete;

 private:
  const sim::Host* previous_;
};

/// A daemon state member owned by one host. Every access path (->, *,
/// assignment, implicit read) checks accessor == owner when DetSan is
/// armed. Const access through a const HostLocal is deep-const; declare
/// the member `mutable` to keep interior mutability (Collector's prune()
/// caches), which preserves today's semantics exactly.
template <typename T>
class HostLocal {
 public:
  template <typename... Args>
  explicit HostLocal(sim::Host& owner, const char* label, Args&&... args)
      : owner_(&owner), label_(label), value_(std::forward<Args>(args)...) {}

  HostLocal(const HostLocal&) = delete;
  HostLocal& operator=(const HostLocal&) = delete;

  T* operator->() {
    check();
    return &value_;
  }
  const T* operator->() const {
    check();
    return &value_;
  }
  T& operator*() {
    check();
    return value_;
  }
  const T& operator*() const {
    check();
    return value_;
  }
  /// Implicit read for scalar-like members (JobManager::state_ compares
  /// and switches on its state enum all over).
  operator const T&() const {  // NOLINT(google-explicit-constructor)
    check();
    return value_;
  }
  HostLocal& operator=(const T& v) {
    check();
    value_ = v;
    return *this;
  }
  HostLocal& operator=(T&& v) {
    check();
    value_ = std::move(v);
    return *this;
  }

  const sim::Host* owner() const { return owner_; }
  const char* label() const { return label_; }

  /// Declared ownership migration: the state now belongs to `new_owner`.
  /// The handoff itself must be performed by the current owner (or a null
  /// context) — handing off someone else's state is itself a violation.
  void handoff(sim::Host& new_owner) {
    check();
    owner_ = &new_owner;
  }

 private:
  void check() const {
    if (detail::g_enabled) [[unlikely]] {
      detail::check_slow(owner_, label_);
    }
  }

  const sim::Host* owner_;
  const char* label_;
  T value_;
};

}  // namespace condorg::det
