// Causal critical-path analysis over a trace's cause edges.
//
// The Tracer's cause edges turn each job's records into a DAG; this walks
// it backward from the job's ACTIVE milestone (first "userlog.EXECUTE") and
// from its terminal record (the "job" root span end), attributing every
// second of the walk window to a fixed phase taxonomy:
//
//   schedd-queue      idle in the Schedd before the GridManager submits
//   gram-submit-rtt   request/commit/callback legs of the two-phase submit
//   gatekeeper-auth   GSI authentication at the gatekeeper (synchronous in
//                     this model, so honestly ~0 — kept as its own bucket)
//   jobmanager-spawn  JobManager creation + local scheduler submission
//   stage-in          executable transfer from the client's GASS server
//   poll-wait         local queue wait + the JobManager's poll quantum
//   recovery          declared recovery windows (recovery.begin → .end) and
//                     resubmission ladders; applied as an overlay — outage
//                     time is carved out of whichever interval covers it,
//                     because a recovery that overlaps execution never
//                     appears as a backward step of its own
//   execution         remote runtime (terminal walk only)
//   stage-out         output transfer back to the client (terminal walk)
//   unattributed      intervals ending at records the taxonomy cannot name
//
// Each backward step covers the interval [cause.t, effect.t] and charges it
// to the phase the *effect* record marks the end of; the segments tile the
// window exactly, so per-job attributions sum to the window by construction
// (self_check() verifies it). When a cause edge leaves the job's own chain
// (e.g. a GridManager tick batched several jobs), the walk falls back to
// the job's previous record and keeps going — the remainder is reported,
// never hidden.
//
// Everything here is derived from simulated time, so the JSON and
// folded-stack exports are byte-identical across same-seed runs. The
// folded format ("stack;frames count" per line) is what standard flamegraph
// tooling consumes; counts are milliseconds summed across jobs.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "condorg/sim/tracer.h"

namespace condorg::sim {

enum class Phase {
  kScheddQueue,
  kGramSubmitRtt,
  kGatekeeperAuth,
  kJobmanagerSpawn,
  kStageIn,
  kPollWait,
  kRecovery,
  kExecution,
  kStageOut,
  kUnattributed,
};
inline constexpr std::size_t kPhaseCount = 10;
const char* phase_name(Phase phase);

class CriticalPath {
 public:
  /// One job's backward walk: the window in seconds and its tiling into
  /// phase buckets (sum(phases) == window, checked by self_check()).
  struct JobWalk {
    std::uint64_t job = 0;
    double window = 0.0;
    std::array<double, kPhaseCount> phases{};
  };

  explicit CriticalPath(const std::vector<TraceRecord>& records);

  /// Jobs that reached ACTIVE, walked from the EXECUTE milestone back to
  /// the root span begin. Ordered by job id.
  const std::vector<JobWalk>& to_active() const { return to_active_; }
  /// Jobs whose root span closed, walked from the close. Ordered by job id.
  const std::vector<JobWalk>& to_terminal() const { return to_terminal_; }
  std::size_t jobs_seen() const { return jobs_seen_; }

  double mean_time_to_active() const;
  /// Fraction of the summed to-ACTIVE window attributed to a named phase
  /// (1.0 - unattributed share). 0 when no job reached ACTIVE.
  double attributed_share() const;
  /// p99 seconds per phase over the to-ACTIVE walks, keyed by phase name.
  std::map<std::string, double> phase_p99_to_active() const;

  /// Deterministic JSON report: aggregate p50/p99/mean/share per phase for
  /// both walks, plus the explicit unattributed remainder.
  std::string to_json() const;
  /// Folded stacks ("time-to-active;<phase> <ms>") for flamegraph tooling.
  std::string to_folded() const;
  /// Structural validation: every job's phase buckets must tile its window
  /// within tolerance. Returns one line per violation.
  std::vector<std::string> self_check() const;

 private:
  std::vector<JobWalk> to_active_;
  std::vector<JobWalk> to_terminal_;
  std::size_t jobs_seen_ = 0;
};

}  // namespace condorg::sim
