// Core simulation types.
#pragma once

#include <cstdint>

namespace condorg::sim {

/// Simulated time, in seconds since the start of the run.
using Time = double;

/// Identifies a scheduled event; used for cancellation.
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEvent = 0;

/// Incarnation counter of a host. Bumped on every crash so that callbacks
/// and message handlers belonging to a previous incarnation can be fenced.
using Epoch = std::uint64_t;

constexpr Time seconds(double s) { return s; }
constexpr Time minutes(double m) { return m * 60.0; }
constexpr Time hours(double h) { return h * 3600.0; }
constexpr Time days(double d) { return d * 86400.0; }

}  // namespace condorg::sim
