// Failure injection.
//
// Drives the four failure types from §4.2 of the paper against a running
// world: host crash/restart cycles (JobManager host, site front-end, submit
// machine) and network partitions. Schedules are drawn from per-target
// exponential distributions so benches can sweep MTBF.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "condorg/sim/types.h"
#include "condorg/sim/world.h"
#include "condorg/util/rng.h"

namespace condorg::sim {

struct CrashPlan {
  std::string host;
  double mtbf_seconds = 3600.0;      // mean time between crashes
  double mean_downtime_seconds = 60.0;
  Time start = 0.0;                  // no crashes before this time
  Time end = 1e18;                   // no crashes after this time
};

struct PartitionPlan {
  std::string host_a;
  std::string host_b;
  double mtbf_seconds = 3600.0;
  double mean_duration_seconds = 120.0;
  Time start = 0.0;
  Time end = 1e18;
};

class FailureInjector {
 public:
  explicit FailureInjector(World& world);

  /// Arm a recurring crash/restart cycle for a host.
  void add_crash_plan(const CrashPlan& plan);

  /// Arm recurring transient partitions between two hosts.
  void add_partition_plan(const PartitionPlan& plan);

  /// One-shot: crash `host` at `when`, restart after `downtime`.
  void crash_at(const std::string& host, Time when, Time downtime);

  /// One-shot: partition a<->b during [when, when+duration).
  void partition_at(const std::string& a, const std::string& b, Time when,
                    Time duration);

  /// Stop injecting (already-scheduled restarts/heals still run so the world
  /// ends connected and alive).
  void disarm() { armed_ = false; }

  std::size_t crashes_injected() const { return crashes_; }
  std::size_t partitions_injected() const { return partitions_; }

  /// Log of injected incidents, for post-run analysis.
  struct Incident {
    enum class Kind { kCrash, kPartition } kind;
    std::string target;  // host, or "a|b" for partitions
    Time at;
    Time duration;
  };
  const std::vector<Incident>& incidents() const { return incidents_; }

 private:
  void schedule_next_crash(const CrashPlan& plan, util::Rng rng);
  void schedule_next_partition(const PartitionPlan& plan, util::Rng rng);

  World& world_;
  bool armed_ = true;
  std::size_t crashes_ = 0;
  std::size_t partitions_ = 0;
  std::vector<Incident> incidents_;
};

}  // namespace condorg::sim
