// Schedule-space model checking over the deterministic kernel.
//
// The paper's exactly-once claim (§3.2) is a property of *every* schedule —
// every delivery order, every same-timestamp tie-break, every crash point —
// not just the orders the default FIFO kernel happens to produce. Explorer
// re-runs a bounded scenario under a ScheduleOracle (a recording
// ScheduleController): a DFS over recorded choice points systematically
// flips one decision at a time (stateless model checking in the DPOR
// family), pruning branches whose (world-state hash, alternative) pair has
// already been expanded; above the DFS budget a randomized phase keeps
// sampling schedules with every concrete choice recorded. Each run asserts
// the full InvariantAuditor suite; a violated run yields a ScheduleTrace —
// the complete choice list — that replay() re-executes byte-for-byte.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "condorg/sim/schedule_controller.h"
#include "condorg/util/rng.h"

namespace condorg::sim {

/// Every Host::crash_point site in the tree, sorted. This is the explorer's
/// ground truth for fault coverage: the protocol spec
/// (src/proto/protocols.json) claims these points per durable message, and
/// tools/analyze/condorg_proto.py cross-checks spec <-> code site <-> this
/// table, so a new crash_point() call that is not added here fails
/// `analyze.proto`. `condorg_explore --list-crash-points` dumps it.
const std::vector<std::string>& enumerated_crash_points();

/// One recorded decision. `state_hash` is the scenario's world-state hash
/// taken just before the decision; equal hashes mean "same state reached by
/// a different history", which is what lets the explorer prune prefixes.
struct ExploreChoice {
  enum class Kind : std::uint8_t { kEvent = 0, kCrash = 1 };
  Kind kind = Kind::kEvent;
  std::uint32_t chosen = 0;        // picked candidate (kEvent) / 1 = crash
  std::uint32_t alternatives = 1;  // options that existed at this point
  std::uint64_t state_hash = 0;

  bool operator==(const ExploreChoice&) const = default;
};

/// A complete, replayable schedule: scenario name + every recorded choice.
/// The text form is what condorg_explore writes next to a violation.
struct ScheduleTrace {
  std::string scenario;
  std::uint64_t seed = 0;
  std::vector<ExploreChoice> choices;

  std::string serialize() const;
  static bool parse(const std::string& text, ScheduleTrace* out);
};

/// What one scenario run produced: the auditor's findings (formatted
/// deterministically by the scenario), the kernel's (when, seq) trace
/// digest — the schedule's fingerprint — and the dispatch count.
struct RunOutcome {
  std::vector<std::string> violations;
  std::uint64_t trace_digest = 0;
  std::uint64_t dispatched = 0;
};

/// The ScheduleController the Explorer hands to a scenario: plays a forced
/// choice prefix, then defaults (FIFO / no crash) or — in the randomized
/// phase — draws from a recorded RNG. Records every decision it makes up to
/// the choice-point budget; past it, everything defaults and is unrecorded,
/// which is what keeps each run (and the DFS tree) bounded.
class ScheduleOracle : public ScheduleController {
 public:
  struct Config {
    std::size_t max_branch = 3;         // alternatives considered per point
    std::size_t max_choice_points = 48; // recorded decisions per run
    std::size_t crash_budget = 1;       // crashes injectable per run
    double crash_downtime = 40.0;       // seconds a crashed host stays down
    double quantum = 0.05;              // delivery quantization, seconds
  };

  ScheduleOracle(const Config& config, std::vector<ExploreChoice> forced);

  /// Choices past the forced prefix are drawn from `rng` (recorded, so the
  /// run stays replayable) instead of defaulting.
  void set_random_tail(util::Rng rng) { random_ = rng; }

  /// World-state hash provider; the scenario sets it once its world exists.
  /// Unset, state hashes are 0 and pruning degrades to per-salt dedup.
  void set_state_probe(std::function<std::uint64_t()> probe) {
    probe_ = std::move(probe);
  }

  const std::vector<ExploreChoice>& record() const { return record_; }
  std::size_t crashes_injected() const { return crashes_injected_; }

  /// Crash points offered to inject_crash that are absent from
  /// enumerated_crash_points() — a code/table drift the Explorer folds into
  /// every run's violations (sorted, deduplicated).
  const std::vector<std::string>& unknown_points() const {
    return unknown_points_;
  }

  // ScheduleController:
  std::size_t pick_event(Time when, std::size_t count) override;
  bool inject_crash(const std::string& host, const char* point,
                    double* downtime) override;
  double delivery_quantum() const override { return config_.quantum; }

 private:
  /// Forced value for the next choice point, or nullopt past the prefix.
  std::optional<std::uint32_t> next_forced(ExploreChoice::Kind kind);
  std::uint64_t state_hash(std::uint64_t salt) const;

  Config config_;
  std::vector<ExploreChoice> forced_;
  std::vector<ExploreChoice> record_;
  std::function<std::uint64_t()> probe_;
  std::optional<util::Rng> random_;
  std::vector<std::string> unknown_points_;
  std::size_t cursor_ = 0;
  std::size_t crashes_injected_ = 0;
};

class Explorer {
 public:
  /// A bounded, self-contained experiment: builds a fresh world, attaches
  /// the oracle as its Simulation's controller, runs to a fixed horizon,
  /// and reports the auditor's findings. Runs must be deterministic given
  /// the oracle (fixed world seed, no wall-clock, no ambient RNG).
  using Scenario = std::function<RunOutcome(ScheduleOracle&)>;

  struct Config {
    ScheduleOracle::Config oracle;
    std::size_t max_schedules = 200000;  // cap on DFS runs
    std::size_t random_runs = 0;         // randomized phase after the DFS
    std::uint64_t seed = 1;              // base seed for the random phase
    bool stop_on_violation = true;
  };

  struct Result {
    std::size_t runs = 0;
    std::size_t distinct_schedules = 0;  // distinct trace digests seen
    std::size_t pruned = 0;              // successors skipped by state hash
    bool exhausted = false;  // DFS frontier emptied below max_schedules
    bool violation_found = false;
    ScheduleTrace counterexample;         // meaningful iff violation_found
    std::vector<std::string> violations;  // from the violating run
  };

  Explorer(std::string scenario_name, Scenario scenario, Config config);

  /// DFS over the choice tree (then the optional randomized phase).
  Result explore();

  /// Re-run one schedule from its trace. A counterexample must reproduce
  /// the identical violations and trace digest — that equality is tested.
  RunOutcome replay(const ScheduleTrace& trace) const;

 private:
  struct RunRecord {
    RunOutcome outcome;
    std::vector<ExploreChoice> record;
  };
  RunRecord run_one(const std::vector<ExploreChoice>& forced,
                    const util::Rng* random_tail) const;

  std::string name_;
  Scenario scenario_;
  Config config_;
};

}  // namespace condorg::sim
