// Schedule-space control hook for the deterministic kernel.
//
// Normally the kernel's tie-break contract is fixed: events sharing a
// timestamp dispatch in FIFO (scheduling) order, and message latency is
// base + jitter. A ScheduleController overrides exactly those two degrees
// of freedom — which live event in a same-timestamp bucket dispatches next,
// and whether a daemon crashes at a named protocol step — without touching
// the rest of the kernel. sim::Explorer drives this hook to enumerate
// schedules; when no controller is attached every code path is bit-for-bit
// the FIFO one, so production runs keep their byte-identical trace digests.
#pragma once

#include <cstddef>
#include <string>

#include "condorg/sim/types.h"

namespace condorg::sim {

class ScheduleController {
 public:
  virtual ~ScheduleController() = default;

  /// Choose among `count` (>= 2) live events sharing timestamp `when`.
  /// The kernel dispatches the chosen candidate (in FIFO position order);
  /// returns are taken modulo `count`, so any value is safe.
  virtual std::size_t pick_event(Time when, std::size_t count) = 0;

  /// Consulted by Host::crash_point at each named protocol step. Return
  /// true to crash that host now (it restarts after `*downtime` seconds,
  /// which the controller may overwrite). `point` is a stable label like
  /// "gatekeeper.submit_accepted" — the crash-point taxonomy in DESIGN §11.
  virtual bool inject_crash(const std::string& host, const char* point,
                            double* downtime) = 0;

  /// Remote message deliveries are snapped *up* to the next multiple of
  /// this quantum (instead of base latency + jitter), so messages in flight
  /// concurrently tie on their delivery timestamp and pick_event can
  /// explore every delivery order. Must be > 0.
  virtual double delivery_quantum() const { return 0.05; }
};

}  // namespace condorg::sim
