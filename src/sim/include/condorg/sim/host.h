// A crashable machine in the simulated grid.
//
// Hosts model the paper's failure domains: the submit machine (Schedd +
// GridManager), the site front-end (Gatekeeper + JobManagers), and the
// execute nodes. A crash bumps the host's epoch; every callback or message
// handler installed before the crash is fenced out, so only state written to
// StableStorage survives — exactly the discipline the paper's recovery
// design depends on.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "condorg/sim/simulation.h"
#include "condorg/sim/stable_storage.h"
#include "condorg/sim/types.h"

namespace condorg::sim {

class Host {
 public:
  /// `queue` is this host's kernel event queue (sim::World passes
  /// Simulation::register_queue(); 0 — the global queue — in legacy mode).
  Host(Simulation& sim, std::string name, std::uint32_t queue = 0);

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  const std::string& name() const { return name_; }
  bool alive() const { return alive_; }
  Epoch epoch() const { return epoch_; }
  std::uint32_t queue() const { return queue_; }
  Simulation& sim() { return sim_; }
  Time now() const { return sim_.now(); }
  /// Observability forwarders (daemons hold a Host&, not the Simulation).
  util::MetricsRegistry& metrics() { return sim_.metrics(); }
  Tracer& tracer() { return sim_.tracer(); }

  /// Disk that survives crashes.
  StableStorage& disk() { return disk_; }
  const StableStorage& disk() const { return disk_; }

  /// Schedule a callback that runs only if this host is still alive *and in
  /// the same incarnation* when the delay elapses. This is the primitive all
  /// daemons use for timers, retries, and job completion.
  EventId post(Time delay, std::function<void()> fn);

  /// Like post, but the callback survives restarts of the host (it still
  /// requires the host to be alive at fire time). Used for externally-driven
  /// hardware-ish events.
  EventId post_any_epoch(Time delay, std::function<void()> fn);

  /// post() for periodic herd timers (status polls, lease renewals,
  /// credential refreshes) whose exact phase carries no protocol meaning.
  /// In island mode the fire time is rounded up to a coarse grid (25 ms) so
  /// herd members share calendar buckets — fewer distinct timestamps means
  /// denser buckets and fewer, fatter synchronization windows, which is
  /// where the profiler showed the parallel kernel's overhead to live. In
  /// legacy mode this is exactly post(): the pinned sequential digest does
  /// not move. The rounding is a pure function of the due time, so it is
  /// identical for every CONDORG_PARALLEL worker count.
  EventId post_coalesced(Time delay, std::function<void()> fn);

  /// Crash the host: epoch bumps, pending post() callbacks are fenced,
  /// message handlers are dropped, crash listeners run. No-op if down.
  void crash();

  /// Restart after a crash: host becomes alive and boot functions run (in
  /// registration order) so daemons can reconstruct themselves from disk().
  /// No-op if already alive.
  void restart();

  /// Convenience: crash now, restart after `downtime`.
  void crash_for(Time downtime);

  /// Named crash-injection point for the schedule explorer. Daemons call
  /// this at every protocol step where a real process could die ("persisted
  /// the record, have not replied yet"). With no ScheduleController attached
  /// (all production/test runs) this is a no-op returning false. When the
  /// controller asks for a crash, the crash is *scheduled* as a separate
  /// event at the current timestamp — crashing inline would destroy daemon
  /// objects whose member functions are still on the call stack — and this
  /// returns true so the caller can return before sending its reply.
  bool crash_point(const char* point);

  /// Register a boot function, run on every restart (NOT on registration).
  /// Boot functions model init scripts: they re-create daemons from stable
  /// state. Returns an id usable with remove_boot().
  int add_boot(std::function<void()> fn);
  void remove_boot(int id);

  /// Crash listeners run at crash time (after the epoch bump), letting
  /// in-memory daemon objects mark themselves dead.
  int add_crash_listener(std::function<void()> fn);
  void remove_crash_listener(int id);

  // --- message handler registry (used by Network) ---
  using Handler = std::function<void(const class Message&)>;

  /// Install a handler for a named service on this host. Handlers are
  /// volatile: a crash removes them; boot functions must re-register.
  /// Throws std::logic_error if the name is already taken by a live
  /// handler — per-host service names are an address space, not a stack.
  void register_service(const std::string& service, Handler handler);
  void unregister_service(const std::string& service);
  const Handler* find_service(const std::string& service) const;

  std::size_t crash_count() const { return crash_count_; }

 private:
  /// Invoke a timer callback, accumulating its wall-clock cost in the
  /// kernel profiler when armed (one branch when not).
  void run_profiled(const std::function<void()>& fn);

  /// Epoch-fenced schedule at an absolute time onto this host's queue.
  EventId post_at(Time when, std::function<void()> fn);

  Simulation& sim_;
  std::string name_;
  std::uint32_t queue_ = 0;
  bool alive_ = true;
  Epoch epoch_ = 1;
  StableStorage disk_;
  std::map<std::string, Handler> services_;
  std::vector<std::pair<int, std::function<void()>>> boots_;
  std::vector<std::pair<int, std::function<void()>>> crash_listeners_;
  int next_listener_id_ = 1;
  std::size_t crash_count_ = 0;
};

}  // namespace condorg::sim
