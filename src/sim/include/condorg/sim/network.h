// Simulated wide-area network.
//
// Models the properties the paper's protocols are designed around:
//   * per-link latency (base + jitter) and bandwidth,
//   * message loss (motivates GRAM's two-phase commit),
//   * partitions (failure type F4: "failures in the network connecting the
//     two machines"), and
//   * destination crashes between send and delivery.
//
// Delivery is best-effort datagram semantics; reliability is built *above*
// this layer by the protocols, as in the real system.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <utility>

#include "condorg/sim/host.h"
#include "condorg/sim/message.h"
#include "condorg/sim/simulation.h"

namespace condorg::sim {

struct LinkConfig {
  double latency = 0.05;           // one-way base latency, seconds
  double jitter = 0.01;            // uniform extra latency in [0, jitter)
  double loss_probability = 0.0;   // per-message drop chance
  double bandwidth_bps = 1.0e8;    // for bulk-transfer duration modelling
};

class Network {
 public:
  Network(Simulation& sim, std::function<Host*(const std::string&)> resolver);

  /// Default link parameters for pairs without an explicit override.
  void set_default_link(const LinkConfig& config) {
    default_link_ = config;
    if (topology_listener_) topology_listener_();
  }
  const LinkConfig& default_link() const { return default_link_; }

  /// Override parameters for a specific (unordered) host pair.
  void set_link(const std::string& a, const std::string& b,
                const LinkConfig& config);
  const LinkConfig& link(const std::string& a, const std::string& b) const;

  /// All explicitly configured links (IslandPlanner reads these to group
  /// hosts joined by zero-lookahead links and to bound the lookahead).
  const std::map<std::pair<std::string, std::string>, LinkConfig>& links()
      const {
    return links_;
  }

  /// Invoked whenever link latencies change (set_default_link / set_link) —
  /// sim::World forwards this to Simulation::notify_topology_changed so the
  /// island plan is rebuilt at the next synchronization point.
  void set_topology_listener(std::function<void()> listener) {
    topology_listener_ = std::move(listener);
  }

  /// Sever / heal connectivity between two hosts (both directions).
  void set_partitioned(const std::string& a, const std::string& b,
                       bool partitioned);
  bool partitioned(const std::string& a, const std::string& b) const;

  /// Isolate a host from everyone (models an unplugged site).
  void set_isolated(const std::string& host, bool isolated);
  bool isolated(const std::string& host) const;

  /// Send a message. Returns immediately; the message is delivered after the
  /// link latency unless it is lost, a partition blocks it, or the
  /// destination host is down / lacks the service at delivery time.
  void send(Message message);

  /// Seconds a bulk transfer of `bytes` takes on the link a->b (latency +
  /// bytes/bandwidth). Loss/partition checks still apply to the messages
  /// that initiate such transfers.
  double transfer_seconds(const std::string& a, const std::string& b,
                          std::uint64_t bytes) const;

  // --- delivery statistics (for tests and benches) ---
  // Relaxed atomics: sends and deliveries run concurrently on island
  // workers; each counter is an independent tally, no ordering is implied.
  std::uint64_t sent() const { return sent_.load(std::memory_order_relaxed); }
  std::uint64_t delivered() const {
    return delivered_.load(std::memory_order_relaxed);
  }
  std::uint64_t lost() const { return lost_.load(std::memory_order_relaxed); }
  std::uint64_t blocked_by_partition() const {
    return blocked_.load(std::memory_order_relaxed);
  }
  std::uint64_t dead_destination() const {
    return dead_destination_.load(std::memory_order_relaxed);
  }

  /// Optional tap invoked for every successfully delivered message
  /// (after the handler). Used by protocol traces in tests.
  void set_delivery_tap(std::function<void(const Message&)> tap) {
    tap_ = std::move(tap);
  }

 private:
  static std::pair<std::string, std::string> ordered(const std::string& a,
                                                     const std::string& b);

  /// Island mode: the loss/jitter stream for messages sent *by* `host`.
  /// The legacy kernel draws every message from one shared stream — fine
  /// when dispatch order is globally serial, a data race (and a thread-count
  /// dependence) once islands send concurrently. Per-sender streams are
  /// seeded by name ("network/send/<host>"), so each draw depends only on
  /// that host's own deterministic send sequence.
  util::Rng& send_rng(const std::string& host);

  Simulation& sim_;
  std::function<Host*(const std::string&)> resolver_;
  LinkConfig default_link_;
  std::map<std::pair<std::string, std::string>, LinkConfig> links_;
  std::set<std::pair<std::string, std::string>> partitions_;
  std::set<std::string> isolated_;
  util::Rng rng_;
  std::function<void(const Message&)> tap_;
  std::function<void()> topology_listener_;

  std::mutex send_rng_mu_;  // guards lazy insertion into send_rngs_ only
  std::map<std::string, util::Rng> send_rngs_;

  std::atomic<std::uint64_t> sent_{0};
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> lost_{0};
  std::atomic<std::uint64_t> blocked_{0};
  std::atomic<std::uint64_t> dead_destination_{0};
};

}  // namespace condorg::sim
