// Messages exchanged over the simulated network.
//
// A message is addressed "host/service" and carries a type tag plus a flat
// string map payload. Protocol layers (GRAM, GASS, MDS, GSI) serialize their
// fields into the payload; keeping it a string map makes every message
// loggable and keeps the network layer protocol-agnostic.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "condorg/util/strings.h"

namespace condorg::sim {

/// "host/service" address. Host names must not contain '/'.
struct Address {
  std::string host;
  std::string service;

  std::string str() const { return host + "/" + service; }
  static Address parse(const std::string& text);
  bool operator==(const Address&) const = default;
};

class Payload {
 public:
  void set(const std::string& key, std::string value) {
    fields_[key] = std::move(value);
  }
  void set_int(const std::string& key, std::int64_t value) {
    fields_[key] = std::to_string(value);
  }
  void set_uint(const std::string& key, std::uint64_t value) {
    fields_[key] = std::to_string(value);
  }
  void set_double(const std::string& key, double value) {
    fields_[key] = util::format("%.17g", value);
  }
  void set_bool(const std::string& key, bool value) {
    // Delegating to set() keeps the assignment on the std::string move path;
    // the const char* operator= path trips GCC 12's -Wrestrict false
    // positive (PR105329) once inlined into message handlers.
    set(key, value ? "1" : "0");
  }

  bool has(const std::string& key) const { return fields_.count(key) > 0; }

  std::string get(const std::string& key,
                  const std::string& fallback = "") const {
    const auto it = fields_.find(key);
    return it == fields_.end() ? fallback : it->second;
  }
  std::int64_t get_int(const std::string& key, std::int64_t fallback = 0) const;
  std::uint64_t get_uint(const std::string& key,
                         std::uint64_t fallback = 0) const;
  double get_double(const std::string& key, double fallback = 0.0) const;
  bool get_bool(const std::string& key, bool fallback = false) const;

  const std::map<std::string, std::string>& fields() const { return fields_; }
  std::string debug_string() const;

  /// Flat serialization for stable-storage records (keys/values must not
  /// contain the 0x1f/0x1e separators; protocol fields never do).
  std::string serialize() const;
  static Payload deserialize(const std::string& text);

 private:
  std::map<std::string, std::string> fields_;
};

struct Message {
  Address from;
  Address to;
  std::string type;
  Payload body;
  /// Approximate wire size, used for bandwidth modelling of bulk transfers.
  std::uint64_t size_bytes = 512;
};

}  // namespace condorg::sim
