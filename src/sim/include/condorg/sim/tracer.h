// Per-job distributed tracing for the simulated grid.
//
// The Tracer is an out-of-band observer owned by the Simulation: daemons
// record spans (an interval of work — the life of a job, one GRAM two-phase
// submission) and point events (a probe classifying a fault, a credential
// refresh), each stamped with simulated time, the emitting host, and that
// host's epoch. Because the Tracer lives outside every Host it survives
// crashes, which is exactly what makes it useful: a job's trace shows the
// submit, the epochs it crossed, the recovery ladder, and the completion in
// one ordered timeline.
//
// Records are append-only and fully determined by the event order, so a
// same-seed run exports byte-identical JSONL; a rolling FNV-1a digest over
// the serialized records gives a cheap cross-check against
// Simulation::trace_digest().
//
// Root spans: the Schedd opens one span named "job" per queue entry
// (begin_job) and closes it exactly once when the entry turns terminal
// (end_job). Roots are keyed by (submit host, job id) so multi-agent worlds
// do not collide, and the bookkeeping records double-closes — the invariant
// auditor's orphan/duplicate check reads it back via job_root_state().
//
// Causal edges: every record carries a dense id and the id of the record
// that caused it, turning a job's trace into a DAG instead of a bag of
// spans. The causal cursor lives in the Tracer: each pushed record advances
// it to its own id, and the kernel snapshots the cursor into every
// scheduled event (Simulation::schedule_at) and re-installs it around the
// event's dispatch (ScopedContext). That one choke point covers Host::post
// timers, Network message delivery, and crash/recovery callbacks — the
// effect record of a cross-host RTT points at the record that sent the
// request even when nothing was recorded in between. sim::CriticalPath
// walks these edges backward to attribute latency per phase.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "condorg/sim/types.h"

namespace condorg::sim {

class Simulation;

using SpanId = std::uint64_t;
using RecordId = std::uint64_t;

struct TraceRecord {
  enum class Kind { kSpanBegin, kSpanEnd, kEvent };

  Time t = 0;
  Kind kind = Kind::kEvent;
  SpanId span = 0;    // 0 for plain events
  SpanId parent = 0;  // 0 = root
  std::uint64_t job = 0;  // 0 = not job-scoped
  std::string name;
  std::string host;
  Epoch epoch = 0;
  std::string status;  // span ends only: "ok", "completed", "error", ...
  std::string detail;
  RecordId id = 0;     // dense, 1-based, assigned by Tracer::push
  RecordId cause = 0;  // id of the causally-preceding record; 0 = root cause

  /// One flat JSON object (one JSONL line, without the newline).
  std::string to_json() const;
  /// Parse one JSONL line back into a record; nullopt on malformed input.
  /// from_json(to_json()) round-trips every field byte-for-byte.
  static std::optional<TraceRecord> from_json(std::string_view line);
};

class Tracer {
 public:
  explicit Tracer(Simulation& sim) : sim_(sim) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Disabled by default; when disabled every record call is a cheap no-op.
  /// Callers building expensive detail strings should guard on enabled().
  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Causal cursor: the id of the most recent record on the current causal
  /// chain (advanced by every push, re-installed around event dispatch).
  /// 0 outside any chain — the next record becomes a root cause.
  RecordId context() const { return context_; }

  /// RAII install of a causal context. The kernel wraps each event's
  /// dispatch in one, carrying the cursor captured when the event was
  /// scheduled; harness code that wants a fresh chain installs 0.
  class ScopedContext {
   public:
    ScopedContext(Tracer& tracer, RecordId cause)
        : tracer_(&tracer), previous_(tracer.context_) {
      tracer.context_ = cause;
    }
    ~ScopedContext() { tracer_->context_ = previous_; }

    ScopedContext(const ScopedContext&) = delete;
    ScopedContext& operator=(const ScopedContext&) = delete;

   private:
    Tracer* tracer_;
    RecordId previous_;
  };

  SpanId begin_span(std::string_view name, std::uint64_t job,
                    std::string_view host, Epoch epoch, SpanId parent = 0,
                    std::string_view detail = {});
  /// Closes an open span; unknown/already-closed ids are ignored (a crashed
  /// daemon's late callback must not corrupt the trace).
  void end_span(SpanId span, std::string_view status = "ok",
                std::string_view detail = {});
  void event(std::string_view name, std::uint64_t job, std::string_view host,
             Epoch epoch, std::string_view detail = {});

  // --- per-job root spans (owned by the Schedd) ---
  SpanId begin_job(std::uint64_t job, std::string_view host, Epoch epoch,
                   std::string_view detail = {});
  void end_job(std::uint64_t job, std::string_view host,
               std::string_view status, std::string_view detail = {});
  /// Root span id for (host, job); 0 when tracing was off at submit time.
  SpanId job_root(std::string_view host, std::uint64_t job) const;

  enum class RootState { kNone, kOpen, kClosed, kDuplicate };
  RootState job_root_state(std::string_view host, std::uint64_t job) const;
  /// Every known root as (host, job, state) — for audits over the full set.
  std::vector<std::tuple<std::string, std::uint64_t, RootState>> root_states()
      const;

  const std::vector<TraceRecord>& records() const { return records_; }
  std::size_t open_span_count() const { return open_spans_.size(); }
  bool span_open(SpanId span) const { return open_spans_.count(span) > 0; }

  /// Latency (end.t - begin.t) of each begin/end event pair, matched per job
  /// id in record order. Unmatched begins are dropped.
  std::vector<double> paired_event_latencies(std::string_view begin_name,
                                             std::string_view end_name) const;

  /// FNV-1a over the serialized records (same basis/prime as the kernel's
  /// event-order digest, hashing bytes instead of (time,id) pairs).
  std::uint64_t digest() const { return digest_; }

  std::string to_jsonl() const;
  bool write_jsonl(const std::string& path) const;

 private:
  struct RootInfo {
    SpanId span = 0;
    int begins = 0;
    int ends = 0;
  };
  using RootKey = std::pair<std::string, std::uint64_t>;

  void push(TraceRecord record);

  Simulation& sim_;
  bool enabled_ = false;
  SpanId next_span_ = 1;
  RecordId next_record_ = 1;
  RecordId context_ = 0;
  std::vector<TraceRecord> records_;
  std::map<SpanId, std::size_t> open_spans_;  // span -> begin record index
  std::map<RootKey, RootInfo> roots_;
  std::uint64_t digest_ = 14695981039346656037ull;  // FNV-1a basis
};

}  // namespace condorg::sim
