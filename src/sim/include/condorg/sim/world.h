// Bundles a Simulation, a Network, and the set of Hosts — one World per
// experiment. Owns all hosts; services and agents hold references.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "condorg/sim/host.h"
#include "condorg/sim/network.h"
#include "condorg/sim/simulation.h"

namespace condorg::sim {

class World {
 public:
  explicit World(std::uint64_t seed = 1);

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Forces the island worker count for Worlds constructed while the guard
  /// lives, overriding CONDORG_PARALLEL (0 = legacy sequential kernel).
  /// The Explorer holds a force-legacy guard around its scenario worlds:
  /// controller-driven exploration requires the sequential universe, and
  /// counterexample replay must be byte-stable whatever the environment.
  /// Guards nest (inner wins; destruction restores the outer value).
  class ScopedParallelOverride {
   public:
    explicit ScopedParallelOverride(int threads);
    ~ScopedParallelOverride();
    ScopedParallelOverride(const ScopedParallelOverride&) = delete;
    ScopedParallelOverride& operator=(const ScopedParallelOverride&) = delete;

   private:
    int previous_;
  };

  Simulation& sim() { return sim_; }
  Network& net() { return net_; }
  Time now() const { return sim_.now(); }

  /// Create a host; names must be unique.
  Host& add_host(const std::string& name);

  /// Look up a host by name; nullptr if unknown.
  Host* find_host(const std::string& name);

  /// Look up a host that must exist.
  Host& host(const std::string& name);

  std::vector<std::string> host_names() const;
  std::size_t host_count() const { return hosts_.size(); }

 private:
  Simulation sim_;
  // Ordered by name so host_names() — which seeds brokers and experiment
  // loops — enumerates identically on every run.
  std::map<std::string, std::unique_ptr<Host>> hosts_;
  Network net_;
};

}  // namespace condorg::sim
