// Island partitioning for the parallel deterministic kernel.
//
// The grid in the paper is partitionable by construction (see det.h): each
// host's daemons touch only host-local state and interact through
// sim::Network messages, whose links carry latency. The kernel exploits
// that: every Host owns its own calendar queue, hosts joined by a
// zero-latency link are grouped into one *island*, and islands advance in
// parallel under conservative lookahead — an island may execute every event
// strictly below the current global window edge because no message from
// another island can arrive below it (cross-island latency >= the plan's
// lookahead). PR 6's partition analyzer and DetSan prove the state side of
// this contract; the IslandPlanner here derives the execution side from the
// live topology.
//
// The plan is rebuilt by a hook (installed by sim::World) whenever hosts or
// links changed, always at a global synchronization point, so the grouping
// is a deterministic function of scenario code — identical for every
// CONDORG_PARALLEL thread count, which is what keeps the trace digest
// byte-identical across N.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "condorg/sim/types.h"

namespace condorg::sim {

class Network;

/// The island grouping of the kernel's event queues. Queue 0 is the
/// control queue (driver/harness events scheduled outside any host
/// context); it always forms island 0 of its own and executes at global
/// barriers because control events may touch any state (fault injection,
/// probes). Host queues are 1..N in host-creation order.
struct IslandPlan {
  /// Island id per kernel queue; index = queue id. island_of_queue[0] == 0.
  std::vector<std::uint32_t> island_of_queue;
  /// Number of islands, including control island 0.
  std::uint32_t island_count = 1;
  /// Conservative lookahead: the minimum one-way latency of any link that
  /// can carry a cross-island message. An island may run every event with
  /// timestamp < window_start + lookahead without synchronizing. A value
  /// <= 0 collapses execution to one island (no safe window exists).
  Time lookahead = 0.0;
};

/// Builds an IslandPlan from the live topology.
class IslandPlanner {
 public:
  /// `queue_of_host[i]` is the kernel queue of the i-th host (any order);
  /// host pairs whose configured link latency is <= merge_threshold are
  /// grouped into the same island (a zero-latency link offers no lookahead,
  /// so its endpoints must advance in lockstep). The lookahead is the
  /// minimum latency over the remaining cross-island links, bounded by the
  /// network's default link config (any host pair may communicate at the
  /// default latency).
  static IslandPlan build(const Network& net,
                          const std::vector<std::uint32_t>& queue_of_host,
                          const std::vector<std::string>& host_names,
                          double merge_threshold = 0.0);
};

}  // namespace condorg::sim
