// Per-host persistent storage.
//
// The paper's fault-tolerance story rests on "all relevant state for each
// submitted job is stored persistently in the scheduler's job queue" and on
// the GRAM client logging job details "to stable storage". StableStorage
// models exactly that: a key/value store plus append-only journals that
// survive host crashes (unlike everything else on the host).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace condorg::sim {

class StableStorage {
 public:
  // --- key/value records ---
  void put(const std::string& key, std::string value);
  std::optional<std::string> get(const std::string& key) const;
  bool erase(const std::string& key);
  bool contains(const std::string& key) const;

  /// All keys with the given prefix, in lexicographic order.
  std::vector<std::string> keys_with_prefix(const std::string& prefix) const;

  // --- append-only journals (e.g. the Schedd job-queue log) ---
  void append(const std::string& journal, std::string record);
  const std::vector<std::string>& journal(const std::string& name) const;
  void truncate_journal(const std::string& name);

  /// Total record count across key/value store and journals.
  std::size_t size() const;

  /// Bytes written since construction; lets benches report I/O pressure.
  std::size_t bytes_written() const { return bytes_written_; }

 private:
  std::map<std::string, std::string> records_;
  std::map<std::string, std::vector<std::string>> journals_;
  std::size_t bytes_written_ = 0;
};

}  // namespace condorg::sim
