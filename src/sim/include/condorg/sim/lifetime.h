// Object-lifetime guard for deferred callbacks.
//
// Host::post fences callbacks against host crashes (epoch change), but a
// daemon object can also be *destroyed* within an epoch — a glide-in startd
// torn down by its manager, a JobManager replaced after a process kill. Any
// timer capturing `this` would then dangle. A Lifetime member makes that
// safe: wrap(fn) runs fn only while the Lifetime (and hence its owner) is
// still alive.
#pragma once

#include <functional>
#include <memory>
#include <utility>

namespace condorg::sim {

class Lifetime {
 public:
  Lifetime() : token_(std::make_shared<char>(0)) {}

  Lifetime(const Lifetime&) = delete;
  Lifetime& operator=(const Lifetime&) = delete;

  /// Invalidate early (before destruction), e.g. on a simulated process
  /// kill while the C++ object lingers.
  void revoke() { token_.reset(); }
  bool alive() const { return token_ != nullptr; }

  /// A copyable probe reporting whether this Lifetime is still alive; safe
  /// to invoke after the owner is destroyed. For callbacks with arguments,
  /// where wrap() does not fit: capture the observer and bail when false.
  std::function<bool()> observer() const {
    return [weak = std::weak_ptr<char>(token_)] { return !weak.expired(); };
  }

  /// Wrap a callback so it is a no-op once this Lifetime is gone.
  std::function<void()> wrap(std::function<void()> fn) const {
    return [weak = std::weak_ptr<char>(token_), fn = std::move(fn)] {
      if (weak.lock()) fn();
    };
  }

 private:
  std::shared_ptr<char> token_;
};

}  // namespace condorg::sim
