// Runtime invariant auditing for the deterministic kernel.
//
// The paper's correctness claims — exactly-once submission (§3.2), recovery
// from crashes at every layer (§4.2), credential hygiene (§4.3) — are global
// properties spread across daemons on different hosts. An InvariantAuditor
// holds a set of named checks over that distributed state; the Simulation
// can be asked to run them between events every N dispatches, when the world
// is quiescent (no callback mid-flight), so a violated invariant is caught
// within N events of the mutation that broke it instead of at the end of a
// week-long campaign.
//
// Checks come from two places:
//   * per-daemon audit() hooks (Schedd, GridManager, Gatekeeper/JobManager,
//     CredentialManager) validating their own state machines, and
//   * cross-daemon checks wired by core::StandardAuditor (sequence-number
//     monotonicity, no job active in two JobManagers, queue-count
//     conservation, no live lease under an expired proxy).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "condorg/sim/types.h"

namespace condorg::sim {

struct AuditViolation {
  Time when = 0;
  std::string check;
  std::string detail;
};

class InvariantAuditor {
 public:
  /// A check appends one human-readable line per violated invariant to
  /// `out`; appending nothing means the invariant holds. Checks must not
  /// mutate simulation state — they run between events.
  using Check = std::function<void(std::vector<std::string>& out)>;

  /// Register a named check. Null checks are rejected.
  void add_check(std::string name, Check check);

  /// Run every check once; record (and count) violations. Returns the
  /// number of violations found in this pass.
  std::size_t run(Time now);

  /// Throw std::logic_error from run() on the first violation instead of
  /// accumulating — turns a violated invariant into an immediate, located
  /// failure in tests and audited example runs.
  void set_fail_fast(bool fail_fast) { fail_fast_ = fail_fast; }

  bool ok() const { return violations_.empty(); }
  const std::vector<AuditViolation>& violations() const { return violations_; }
  std::uint64_t audits_run() const { return audits_; }
  std::size_t check_count() const { return checks_.size(); }

  /// Multi-line summary: pass/violation counts plus the first violations.
  std::string report() const;

 private:
  struct NamedCheck {
    std::string name;
    Check check;
  };

  std::vector<NamedCheck> checks_;
  std::vector<AuditViolation> violations_;
  std::uint64_t audits_ = 0;
  bool fail_fast_ = false;
  // Cap on recorded violations: a broken invariant usually re-fires on every
  // audit; keeping the first occurrences is what matters for diagnosis.
  static constexpr std::size_t kMaxRecorded = 256;
};

}  // namespace condorg::sim
