// Discrete-event simulation kernel.
//
// A Simulation owns a priority queue of timestamped callbacks and a
// monotonically advancing clock. Everything in the reproduction — protocol
// timeouts, job runtimes, crashes, probes — is an event in this queue, which
// is what makes week-long grid campaigns runnable in milliseconds and every
// run exactly reproducible from its seed.
//
// The kernel runs in one of two universes:
//
//  * Legacy (default): one global calendar, events totally ordered by
//    (when, seq) with a process-wide seq counter. Byte-identical to the
//    pre-island kernel; this is what every existing test, bench baseline,
//    and the Explorer's recorded schedules pin.
//
//  * Island mode (CONDORG_PARALLEL=N, wired by sim::World): every Host owns
//    its own calendar queue, events are totally ordered by the key
//    (when, origin queue, origin counter), and islands — groups of queues
//    connected only by latency-bearing links (see island.h) — advance in
//    parallel under conservative lookahead. The dispatch stream, and hence
//    the FNV trace digest, is the merge of the per-island streams in key
//    order, which is a deterministic function of the scenario alone: the
//    digest is byte-identical for every worker count N, and N=1 runs the
//    very same windowed algorithm on the calling thread. When a global
//    observer is armed (Tracer, InvariantAuditor), the kernel transparently
//    serializes execution in exact key order so observer output stays
//    byte-identical too; attaching a ScheduleController (the Explorer)
//    requires the legacy universe.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "condorg/sim/island.h"
#include "condorg/sim/profiler.h"
#include "condorg/sim/tracer.h"
#include "condorg/sim/types.h"
#include "condorg/util/metrics.h"
#include "condorg/util/rng.h"

namespace condorg::sim {

class InvariantAuditor;
class ScheduleController;
struct IslandEngine;

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 1);
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Simulated time as seen from the calling context. Inside an event this
  /// is the dispatching queue's clock (in island mode, islands at different
  /// points of the current window legitimately disagree); outside any event
  /// it is the committed global clock.
  Time now() const {
    const TlsContext& tls = tls_context();
    return queues_[tls.sim == this ? tls.queue : 0].local_now;
  }

  /// Schedule a callback at an absolute time (>= now). Events with equal
  /// timestamps dispatch in FIFO (scheduling) order — this tie-break is part
  /// of the kernel's contract and is pinned by tests: protocol layers rely
  /// on "schedule A then B at time t => A runs before B". In island mode
  /// the target queue is the scheduling context's queue (daemons schedule
  /// onto their own island; harness code onto the control queue), and the
  /// FIFO guarantee holds per scheduling context.
  EventId schedule_at(Time when, std::function<void()> fn);

  /// Schedule a callback after a delay (>= 0).
  EventId schedule_in(Time delay, std::function<void()> fn) {
    // Pass through untouched: schedule_at rejects null callbacks, and
    // conditionally moving here (`fn ? std::move(fn) : nullptr`) reads fn's
    // state in one operand while the other moves it out — the moved-from
    // pattern the determinism lint exists to keep out of the kernel.
    return schedule_at(now() + delay, std::move(fn));
  }

  /// Cancel a pending event. Returns true if the event was still pending.
  /// Island mode: only the event's own queue context (or the control
  /// context at a barrier) may cancel — cancelling another island's event
  /// mid-window would race with its dispatch.
  bool cancel(EventId id);

  /// Run until the event queue is empty or stop() is called.
  void run();

  /// Run events with timestamp <= until; afterwards now() == until unless the
  /// queue emptied earlier or stop() was called. Returns true if events
  /// remain pending.
  bool run_until(Time until);

  /// Request the active run()/run_until() loop to return. In island mode a
  /// stop from inside an event halts the calling island immediately; every
  /// other island still finishes the current window (the committed window
  /// content is what keeps the digest independent of worker count).
  void stop();

  /// Number of events dispatched so far (for micro-benchmarks / debugging).
  std::uint64_t dispatched() const { return dispatched_; }
  std::size_t pending() const;

  /// Master RNG; prefer make_rng() for per-component streams.
  util::Rng& rng() { return rng_; }

  /// Deterministic per-component stream derived from the master seed.
  util::Rng make_rng(std::string_view label) const { return rng_.split(label); }

  /// Rolling FNV-1a hash over the committed dispatch stream — a digest of
  /// the run's event order. Legacy mode mixes every dispatched (time, seq)
  /// pair in dispatch order; island mode mixes every (time, origin queue,
  /// origin counter) key in global key order (the deterministic merge of
  /// the per-island streams). Two runs of the same scenario from the same
  /// seed — and, in island mode, under any CONDORG_PARALLEL worker count —
  /// must produce identical digests; a mismatch is the determinism
  /// self-check's proof that hidden state (wall clock, unordered iteration,
  /// ambient RNG, or an island executing past its lookahead) leaked into
  /// scheduling.
  std::uint64_t trace_digest() const { return trace_digest_; }

  /// Attach an invariant auditor: dispatch runs its checks between events,
  /// every `period` dispatches (the world is quiescent there — no callback
  /// is mid-flight). Pass nullptr to detach. The auditor must outlive the
  /// attachment. Island mode serializes execution while an auditor is
  /// attached (the auditor reads cross-island state).
  void attach_auditor(InvariantAuditor* auditor, std::uint64_t period = 1024);
  InvariantAuditor* auditor() const { return auditor_; }

  /// Attach a schedule controller (see schedule_controller.h): it then picks
  /// which live event dispatches whenever a timestamp bucket holds more than
  /// one, and Host::crash_point / Network delivery quantization consult it.
  /// Pass nullptr to detach; with none attached, dispatch is plain FIFO and
  /// the trace digest is byte-identical to an uncontrolled run. The
  /// controller must outlive the attachment. Incompatible with island mode
  /// (the Explorer runs the legacy universe; see World::set_parallel_override).
  void set_controller(ScheduleController* controller);
  ScheduleController* controller() const { return controller_; }

  /// Metric registry shared by every daemon in this world. Per-Simulation
  /// (not global) so scenarios run back-to-back stay isolated.
  util::MetricsRegistry& metrics() { return metrics_; }
  const util::MetricsRegistry& metrics() const { return metrics_; }

  /// Distributed-trace recorder (disabled until Tracer::set_enabled).
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

  /// Kernel profiler (disabled until Profiler::set_enabled; sim::World arms
  /// it from CONDORG_PROFILE). Hooked at Network delivery and Host::post.
  Profiler& profiler() { return profiler_; }
  const Profiler& profiler() const { return profiler_; }

  // --- island-parallel kernel ---

  /// Switch this Simulation into island mode with a budget of `threads`
  /// window workers (>= 1). Must be called before any event is scheduled;
  /// the universes differ in event-id packing and tie-break order, so they
  /// cannot be mixed within one run. Normally called by sim::World from
  /// CONDORG_PARALLEL.
  void configure_islands(unsigned threads);
  bool island_mode() const { return island_mode_; }
  unsigned island_threads() const { return island_threads_; }

  /// Register a new per-host event queue (island mode; World::add_host).
  /// Returns the queue id. In legacy mode returns 0 (the global queue).
  std::uint32_t register_queue();
  std::size_t queue_count() const { return queues_.size(); }

  /// Install the hook that (re)builds the island plan. Invoked at run entry
  /// and at window barriers after the topology changed (see
  /// notify_topology_changed). Installed by sim::World.
  void set_island_plan_hook(std::function<IslandPlan()> hook);
  const IslandPlan& island_plan() const { return plan_; }

  /// Tell the kernel hosts/links changed; the plan hook is re-run at the
  /// next synchronization point. Safe from the control context only.
  void notify_topology_changed() { ++topology_version_; }

  /// Queue of the current scheduling context: the dispatching event's queue
  /// inside an event, 0 (control) outside.
  std::uint32_t context_queue() const {
    const TlsContext& tls = tls_context();
    return tls.sim == this ? tls.queue : 0;
  }

  /// Schedule onto an explicit queue (Host::post routes timers to the
  /// host's own queue whatever context arms them). Origin — and therefore
  /// the FIFO tie-break — is still the scheduling context.
  EventId schedule_on_queue(std::uint32_t queue, Time when,
                            std::function<void()> fn);

  /// Cross-island delivery (Network): enqueue `fn` to run on `queue` at
  /// `when`, ordered by the sender's (origin, counter) key. In parallel
  /// windows this goes through the target island's inbox and is integrated
  /// at the next barrier; no EventId is returned because deliveries are
  /// never cancelled (loss and partitions are decided before scheduling).
  void schedule_cross(std::uint32_t queue, Time when, std::function<void()> fn);

  /// Per-island execution statistics (events dispatched, inbox messages
  /// integrated, window epochs, blocked/busy wall time). Deterministic
  /// columns only unless `include_wall`; see Profiler::to_json.
  struct IslandStat {
    std::uint64_t events = 0;
    std::uint64_t inbox_messages = 0;
    std::uint64_t epochs = 0;
    std::uint64_t blocked_ns = 0;  // wall clock, nondeterministic
    std::uint64_t busy_ns = 0;     // wall clock, nondeterministic
  };
  std::vector<IslandStat> island_stats() const;

  /// Calendar introspection (tests / debugging): live pending events and
  /// buried cancelled entries of one queue. The tombstone count is exact —
  /// it rises on cancel and falls as the lazy deletion drains the entry —
  /// so a cancel storm on one island must leave every other queue's count
  /// untouched (pinned by the island regression tests).
  std::size_t queue_pending(std::uint32_t queue) const {
    return queues_[queue].live;
  }
  std::uint64_t queue_tombstones(std::uint32_t queue) const {
    return queues_[queue].tombstones;
  }

 private:
  friend struct IslandEngine;
  friend class Tracer;

  // Event storage is a slab of reusable records addressed by a 32-bit slot
  // index; an EventId packs (slot + 1) in the high 32 bits and the slot's
  // generation in the low 32 (so 0 stays kInvalidEvent) — island mode packs
  // (queue:14 | slot+1:22 | gen:28) instead, so cancel() can route to the
  // owning queue. Cancellation just bumps the slot's generation — O(1), no
  // queue surgery — and the pending entry left behind is lazily discarded
  // when its bucket drains (its generation no longer matches); the queue's
  // tombstone counter tracks how many such entries are still buried.
  //
  // The pending set is a calendar of per-timestamp FIFO buckets with a
  // min-heap over the *distinct* timestamps only. Simulated time is heavily
  // tied (timeout grids, periodic cycles, same-tick protocol rounds), so the
  // heap stays tiny and a dispatch is usually "advance the front bucket's
  // cursor" rather than an O(log n_events) sift over megabytes of nodes.
  // Dispatch order within a queue is exactly (when, origin, ctr): bucket
  // entries are kept in (origin, ctr) order — plain appends in legacy mode,
  // where origin is constant and ctr is the global seq, which keeps FIFO
  // tie-breaks AND the (when, seq) trace digest byte-identical to the
  // pre-island kernel — and the heap orders distinct times.
  struct PendingEvent {
    Time when;           // verbatim as scheduled (digest input)
    std::uint64_t seq;   // origin counter: FIFO tiebreaker + digest input
    std::uint32_t slot;  // slab index
    std::uint32_t gen;   // generation at scheduling time
  };
  struct Bucket {
    std::uint64_t key = 0;             // normalized bit pattern of `when`
    std::size_t next = 0;              // drain cursor into items
    std::vector<PendingEvent> items;   // (origin, ctr)-ascending (live ones)
  };
  struct BucketRef {
    Time when;
    std::uint32_t bucket;
    // Strict: at most one live bucket per timestamp, so ties are impossible.
    bool after(const BucketRef& other) const { return when > other.when; }
  };
  struct EventRecord {
    std::function<void()> fn;  // non-null iff live
    std::uint32_t gen = 1;
    // Origin queue of the scheduling context (island-mode tie-break; always
    // 0 in legacy mode). Packed next to gen so the record stays 48 bytes.
    std::uint32_t origin = 0;
    // Tracer causal cursor snapshotted at scheduling time (0 when tracing
    // is off). dispatch() re-installs it around fn() so records emitted by
    // the callback point at the record that caused the event — across
    // Host::post timers, Network deliveries, and crash/boot callbacks
    // alike, since they all funnel through schedule_at. Lives in the slab
    // (not PendingEvent) to keep the calendar buckets compact.
    RecordId cause = 0;
  };

  /// One calendar: the global one in legacy mode, per-host in island mode.
  /// The scratch pick vector and the lazy-deletion (tombstone) accounting
  /// are deliberately per-queue: a controller pick or a cancel storm on one
  /// island must not bleed state into another island's calendar.
  struct QueueState {
    std::vector<BucketRef> heap;        // min-heap over distinct timestamps
    std::vector<Bucket> buckets;        // bucket slab; index = BucketRef::bucket
    std::vector<std::uint32_t> free_buckets;  // recycled buckets (keep caps)
    std::unordered_map<std::uint64_t, std::uint32_t> bucket_of;  // key → index
    std::vector<EventRecord> slots;     // slab; index = PendingEvent::slot
    std::vector<std::uint32_t> free_slots;    // recycled slab slots (LIFO)
    std::vector<std::size_t> pick_candidates;  // scratch for take_front_event
    std::size_t live = 0;               // live (non-cancelled) pending events
    std::uint64_t tombstones = 0;       // cancelled entries awaiting drain
    std::uint64_t ctr = 0;              // origin counter for this context
    std::uint64_t events = 0;           // dispatched from this queue
    Time local_now = 0.0;               // this queue's committed clock
    bool halted = false;                // stop() called from this queue
  };

  struct TlsContext {
    const Simulation* sim = nullptr;
    std::uint32_t queue = 0;
  };
  static TlsContext& tls_context();

  /// RAII: mark `queue` as the dispatching context on this thread.
  class ScopedQueue {
   public:
    ScopedQueue(const Simulation* sim, std::uint32_t queue)
        : previous_(tls_context()) {
      tls_context() = TlsContext{sim, queue};
    }
    ~ScopedQueue() { tls_context() = previous_; }
    ScopedQueue(const ScopedQueue&) = delete;
    ScopedQueue& operator=(const ScopedQueue&) = delete;

   private:
    TlsContext previous_;
  };

  EventId make_id(std::uint32_t queue, std::uint32_t slot,
                  std::uint32_t gen) const;
  /// The slab record for a live event id; nullptr for stale/foreign ids.
  /// Island mode writes the owning queue to *queue_out.
  EventRecord* record_for(EventId id, std::uint32_t* queue_out);

  /// Schedule with an explicit origin key (cross-island integration).
  EventId schedule_keyed(std::uint32_t queue, Time when, std::uint32_t origin,
                         std::uint64_t ctr, std::function<void()> fn,
                         RecordId cause);

  void dispatch(std::uint32_t queue, const PendingEvent& ev);
  /// Remove the next event from the front bucket. FIFO (cursor) order
  /// normally; with a controller attached, the controller picks among the
  /// bucket's live entries. Requires drop_stale_front() to have run.
  PendingEvent take_front_event(QueueState& q);
  /// Advance front buckets past cancelled entries; release drained buckets.
  /// Afterwards the heap front (if any) has a live event at its cursor.
  void drop_stale_front(QueueState& q);
  static void heap_push(QueueState& q, BucketRef node);
  static void heap_pop_front(QueueState& q);

  /// Fold one committed dispatch into the digest (legacy: when+seq; island
  /// mode: when+origin+ctr).
  void fold_digest(Time when, std::uint32_t origin, std::uint64_t ctr);

  void run_legacy(Time until, bool bounded);
  void run_islands(Time until, bool bounded);
  /// Lazily (re)build the island plan via the hook.
  void refresh_plan();

  // Atomic because stop() may be called from an island worker thread while
  // the coordinator (and other islands) are mid-window.
  std::atomic<bool> stopped_{false};
  bool island_mode_ = false;
  unsigned island_threads_ = 1;
  std::uint64_t dispatched_ = 0;
  std::vector<QueueState> queues_;  // [0] = control/legacy global queue
  util::Rng rng_;
  std::uint64_t trace_digest_ = 14695981039346656037ull;  // FNV-1a basis
  ScheduleController* controller_ = nullptr;
  InvariantAuditor* auditor_ = nullptr;
  std::uint64_t audit_period_ = 1024;
  IslandPlan plan_;
  std::function<IslandPlan()> plan_hook_;
  std::uint64_t topology_version_ = 1;
  std::uint64_t planned_version_ = 0;
  std::unique_ptr<IslandEngine> engine_;
  util::MetricsRegistry metrics_;
  Tracer tracer_{*this};
  Profiler profiler_;
};

}  // namespace condorg::sim
