// Discrete-event simulation kernel.
//
// A Simulation owns a priority queue of timestamped callbacks and a
// monotonically advancing clock. Everything in the reproduction — protocol
// timeouts, job runtimes, crashes, probes — is an event in this queue, which
// is what makes week-long grid campaigns runnable in milliseconds and every
// run exactly reproducible from its seed.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "condorg/sim/profiler.h"
#include "condorg/sim/tracer.h"
#include "condorg/sim/types.h"
#include "condorg/util/metrics.h"
#include "condorg/util/rng.h"

namespace condorg::sim {

class InvariantAuditor;
class ScheduleController;

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 1);

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  Time now() const { return now_; }

  /// Schedule a callback at an absolute time (>= now). Events with equal
  /// timestamps dispatch in FIFO (scheduling) order — this tie-break is part
  /// of the kernel's contract and is pinned by tests: protocol layers rely
  /// on "schedule A then B at time t => A runs before B".
  EventId schedule_at(Time when, std::function<void()> fn);

  /// Schedule a callback after a delay (>= 0).
  EventId schedule_in(Time delay, std::function<void()> fn) {
    // Pass through untouched: schedule_at rejects null callbacks, and
    // conditionally moving here (`fn ? std::move(fn) : nullptr`) reads fn's
    // state in one operand while the other moves it out — the moved-from
    // pattern the determinism lint exists to keep out of the kernel.
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancel a pending event. Returns true if the event was still pending.
  bool cancel(EventId id);

  /// Run until the event queue is empty or stop() is called.
  void run();

  /// Run events with timestamp <= until; afterwards now() == until unless the
  /// queue emptied earlier or stop() was called. Returns true if events
  /// remain pending.
  bool run_until(Time until);

  /// Request the active run()/run_until() loop to return.
  void stop() { stopped_ = true; }

  /// Number of events dispatched so far (for micro-benchmarks / debugging).
  std::uint64_t dispatched() const { return dispatched_; }
  std::size_t pending() const { return live_; }

  /// Master RNG; prefer make_rng() for per-component streams.
  util::Rng& rng() { return rng_; }

  /// Deterministic per-component stream derived from the master seed.
  util::Rng make_rng(std::string_view label) const { return rng_.split(label); }

  /// Rolling FNV-1a hash over every dispatched (time, seq) pair — a digest of
  /// the run's event order. Two runs of the same scenario from the same seed
  /// must produce identical digests; a mismatch is the determinism
  /// self-check's proof that hidden state (wall clock, unordered iteration,
  /// ambient RNG) leaked into scheduling.
  std::uint64_t trace_digest() const { return trace_digest_; }

  /// Attach an invariant auditor: dispatch runs its checks between events,
  /// every `period` dispatches (the world is quiescent there — no callback
  /// is mid-flight). Pass nullptr to detach. The auditor must outlive the
  /// attachment.
  void attach_auditor(InvariantAuditor* auditor, std::uint64_t period = 1024);
  InvariantAuditor* auditor() const { return auditor_; }

  /// Attach a schedule controller (see schedule_controller.h): it then picks
  /// which live event dispatches whenever a timestamp bucket holds more than
  /// one, and Host::crash_point / Network delivery quantization consult it.
  /// Pass nullptr to detach; with none attached, dispatch is plain FIFO and
  /// the trace digest is byte-identical to an uncontrolled run. The
  /// controller must outlive the attachment.
  void set_controller(ScheduleController* controller) {
    controller_ = controller;
  }
  ScheduleController* controller() const { return controller_; }

  /// Metric registry shared by every daemon in this world. Per-Simulation
  /// (not global) so scenarios run back-to-back stay isolated.
  util::MetricsRegistry& metrics() { return metrics_; }
  const util::MetricsRegistry& metrics() const { return metrics_; }

  /// Distributed-trace recorder (disabled until Tracer::set_enabled).
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

  /// Kernel profiler (disabled until Profiler::set_enabled; sim::World arms
  /// it from CONDORG_PROFILE). Hooked at Network delivery and Host::post.
  Profiler& profiler() { return profiler_; }
  const Profiler& profiler() const { return profiler_; }

 private:
  // Event storage is a slab of reusable records addressed by a 32-bit slot
  // index; an EventId packs (slot + 1) in the high 32 bits and the slot's
  // generation in the low 32 (so 0 stays kInvalidEvent). Cancellation just
  // bumps the slot's generation — O(1), no queue surgery — and the pending
  // entry left behind is lazily discarded when its bucket drains (its
  // generation no longer matches).
  //
  // The pending set is a calendar of per-timestamp FIFO buckets with a
  // min-heap over the *distinct* timestamps only. Simulated time is heavily
  // tied (timeout grids, periodic cycles, same-tick protocol rounds), so the
  // heap stays tiny and a dispatch is usually "advance the front bucket's
  // cursor" rather than an O(log n_events) sift over megabytes of nodes.
  // Dispatch order is exactly (when, seq): bucket append order is seq order
  // (seq is globally monotonic) and the heap orders distinct times; seq is
  // the same counter the pre-slab implementation used as the event id, which
  // keeps FIFO tie-breaks AND the (when, seq) trace digest byte-identical.
  struct PendingEvent {
    Time when;           // verbatim as scheduled (digest input)
    std::uint64_t seq;   // FIFO tiebreaker + digest input
    std::uint32_t slot;  // slab index
    std::uint32_t gen;   // generation at scheduling time
  };
  struct Bucket {
    std::uint64_t key = 0;             // normalized bit pattern of `when`
    std::size_t next = 0;              // drain cursor into items
    std::vector<PendingEvent> items;   // seq-ascending by construction
  };
  struct BucketRef {
    Time when;
    std::uint32_t bucket;
    // Strict: at most one live bucket per timestamp, so ties are impossible.
    bool after(const BucketRef& other) const { return when > other.when; }
  };
  struct EventRecord {
    std::function<void()> fn;  // non-null iff live
    std::uint32_t gen = 1;
    // Tracer causal cursor snapshotted at scheduling time (0 when tracing
    // is off). dispatch() re-installs it around fn() so records emitted by
    // the callback point at the record that caused the event — across
    // Host::post timers, Network deliveries, and crash/boot callbacks
    // alike, since they all funnel through schedule_at. Lives in the slab
    // (not PendingEvent) to keep the calendar buckets compact.
    RecordId cause = 0;
  };

  static EventId make_id(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(slot) + 1) << 32 | gen;
  }
  /// The slab record for a live event id; nullptr for stale/foreign ids.
  EventRecord* record_for(EventId id);

  void dispatch(const PendingEvent& ev);
  /// Remove the next event from the front bucket. FIFO (cursor) order
  /// normally; with a controller attached, the controller picks among the
  /// bucket's live entries. Requires drop_stale_front() to have run.
  PendingEvent take_front_event();
  /// Advance front buckets past cancelled entries; release drained buckets.
  /// Afterwards the heap front (if any) has a live event at its cursor.
  void drop_stale_front();
  void heap_push(BucketRef node);
  void heap_pop_front();

  Time now_ = 0.0;
  bool stopped_ = false;
  std::uint64_t next_seq_ = 1;
  std::uint64_t dispatched_ = 0;
  std::size_t live_ = 0;
  std::vector<BucketRef> heap_;       // min-heap over distinct timestamps
  std::vector<Bucket> buckets_;       // bucket slab; index = BucketRef::bucket
  std::vector<std::uint32_t> free_buckets_;  // recycled buckets (keep caps)
  std::unordered_map<std::uint64_t, std::uint32_t> bucket_of_;  // key → index
  std::vector<EventRecord> slots_;    // slab; index = PendingEvent::slot
  std::vector<std::uint32_t> free_;   // recycled slab slots (LIFO)
  util::Rng rng_;
  std::uint64_t trace_digest_ = 14695981039346656037ull;  // FNV-1a basis
  ScheduleController* controller_ = nullptr;
  std::vector<std::size_t> pick_candidates_;  // scratch for take_front_event
  InvariantAuditor* auditor_ = nullptr;
  std::uint64_t audit_period_ = 1024;
  util::MetricsRegistry metrics_;
  Tracer tracer_{*this};
  Profiler profiler_;
};

}  // namespace condorg::sim
