// Discrete-event simulation kernel.
//
// A Simulation owns a priority queue of timestamped callbacks and a
// monotonically advancing clock. Everything in the reproduction — protocol
// timeouts, job runtimes, crashes, probes — is an event in this queue, which
// is what makes week-long grid campaigns runnable in milliseconds and every
// run exactly reproducible from its seed.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "condorg/sim/tracer.h"
#include "condorg/sim/types.h"
#include "condorg/util/metrics.h"
#include "condorg/util/rng.h"

namespace condorg::sim {

class InvariantAuditor;

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 1);

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  Time now() const { return now_; }

  /// Schedule a callback at an absolute time (>= now). Events with equal
  /// timestamps dispatch in FIFO (scheduling) order — this tie-break is part
  /// of the kernel's contract and is pinned by tests: protocol layers rely
  /// on "schedule A then B at time t => A runs before B".
  EventId schedule_at(Time when, std::function<void()> fn);

  /// Schedule a callback after a delay (>= 0).
  EventId schedule_in(Time delay, std::function<void()> fn) {
    // Pass through untouched: schedule_at rejects null callbacks, and
    // conditionally moving here (`fn ? std::move(fn) : nullptr`) reads fn's
    // state in one operand while the other moves it out — the moved-from
    // pattern the determinism lint exists to keep out of the kernel.
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancel a pending event. Returns true if the event was still pending.
  bool cancel(EventId id);

  /// Run until the event queue is empty or stop() is called.
  void run();

  /// Run events with timestamp <= until; afterwards now() == until unless the
  /// queue emptied earlier or stop() was called. Returns true if events
  /// remain pending.
  bool run_until(Time until);

  /// Request the active run()/run_until() loop to return.
  void stop() { stopped_ = true; }

  /// Number of events dispatched so far (for micro-benchmarks / debugging).
  std::uint64_t dispatched() const { return dispatched_; }
  std::size_t pending() const { return handlers_.size(); }

  /// Master RNG; prefer make_rng() for per-component streams.
  util::Rng& rng() { return rng_; }

  /// Deterministic per-component stream derived from the master seed.
  util::Rng make_rng(std::string_view label) const { return rng_.split(label); }

  /// Rolling FNV-1a hash over every dispatched (time, id) pair — a digest of
  /// the run's event order. Two runs of the same scenario from the same seed
  /// must produce identical digests; a mismatch is the determinism
  /// self-check's proof that hidden state (wall clock, unordered iteration,
  /// ambient RNG) leaked into scheduling.
  std::uint64_t trace_digest() const { return trace_digest_; }

  /// Attach an invariant auditor: dispatch runs its checks between events,
  /// every `period` dispatches (the world is quiescent there — no callback
  /// is mid-flight). Pass nullptr to detach. The auditor must outlive the
  /// attachment.
  void attach_auditor(InvariantAuditor* auditor, std::uint64_t period = 1024);
  InvariantAuditor* auditor() const { return auditor_; }

  /// Metric registry shared by every daemon in this world. Per-Simulation
  /// (not global) so scenarios run back-to-back stay isolated.
  util::MetricsRegistry& metrics() { return metrics_; }
  const util::MetricsRegistry& metrics() const { return metrics_; }

  /// Distributed-trace recorder (disabled until Tracer::set_enabled).
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

 private:
  struct QueuedEvent {
    Time when;
    EventId id;  // also the tiebreaker: FIFO among same-time events, since
                 // ids are allocated in scheduling order and never reused
    bool operator>(const QueuedEvent& other) const {
      if (when != other.when) return when > other.when;
      return id > other.id;
    }
  };

  void dispatch(const QueuedEvent& ev);

  Time now_ = 0.0;
  bool stopped_ = false;
  EventId next_id_ = 1;
  std::uint64_t dispatched_ = 0;
  std::priority_queue<QueuedEvent, std::vector<QueuedEvent>,
                      std::greater<QueuedEvent>>
      queue_;
  std::unordered_map<EventId, std::function<void()>> handlers_;
  util::Rng rng_;
  std::uint64_t trace_digest_ = 14695981039346656037ull;  // FNV-1a basis
  InvariantAuditor* auditor_ = nullptr;
  std::uint64_t audit_period_ = 1024;
  util::MetricsRegistry metrics_;
  Tracer tracer_{*this};
};

}  // namespace condorg::sim
