// Request/response helper over the datagram Network.
//
// RPC here is deliberately *unreliable*: a call can time out because the
// request or the response was lost, and the caller cannot tell which — the
// exact ambiguity GRAM's two-phase commit (§3.2 of the paper) exists to
// resolve. Retries and deduplication are the responsibility of protocol
// layers above.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "condorg/sim/host.h"
#include "condorg/sim/message.h"
#include "condorg/sim/network.h"

namespace condorg::sim {

class RpcClient {
 public:
  /// Result callback: ok=false means timeout (request or reply lost, peer
  /// dead, or partition); the payload is then empty.
  using Callback = std::function<void(bool ok, const Payload& reply)>;

  /// `service` names this client's reply endpoint on `host`; it must be
  /// unique per host.
  RpcClient(Host& host, Network& network, std::string service);
  ~RpcClient();

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  /// Issue a request to `to` with the given type/payload; `callback` fires
  /// exactly once, with the reply or a timeout.
  void call(const Address& to, const std::string& type, Payload payload,
            double timeout_seconds, Callback callback);

  /// One-way send from this client's endpoint (no reply expected).
  void notify(const Address& to, const std::string& type, Payload payload);

  const std::string& service() const { return service_; }
  Address address() const { return Address{host_.name(), service_}; }

  std::size_t pending() const { return pending_.size(); }

 private:
  struct Pending {
    Callback callback;
    EventId timeout_event;
  };

  void on_message(const Message& message);
  void install_handler();

  Host& host_;
  Network& network_;
  std::string service_;
  std::uint64_t next_id_ = 1;
  // Ordered by call id so crash/destructor sweeps run in issue order — an
  // unordered map here leaks iteration order into the event queue.
  std::map<std::uint64_t, Pending> pending_;
  int crash_listener_ = 0;
  int boot_id_ = 0;
};

/// Server-side helper: build and send the reply for `request`, echoing the
/// correlation id. `from` is the responding service's address.
void rpc_reply(Network& network, const Message& request, const Address& from,
               Payload reply);

}  // namespace condorg::sim
