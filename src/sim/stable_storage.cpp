#include "condorg/sim/stable_storage.h"

namespace condorg::sim {

void StableStorage::put(const std::string& key, std::string value) {
  bytes_written_ += key.size() + value.size();
  records_[key] = std::move(value);
}

std::optional<std::string> StableStorage::get(const std::string& key) const {
  const auto it = records_.find(key);
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

bool StableStorage::erase(const std::string& key) {
  return records_.erase(key) > 0;
}

bool StableStorage::contains(const std::string& key) const {
  return records_.count(key) > 0;
}

std::vector<std::string> StableStorage::keys_with_prefix(
    const std::string& prefix) const {
  std::vector<std::string> out;
  for (auto it = records_.lower_bound(prefix); it != records_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

void StableStorage::append(const std::string& name, std::string record) {
  bytes_written_ += record.size();
  journals_[name].push_back(std::move(record));
}

const std::vector<std::string>& StableStorage::journal(
    const std::string& name) const {
  static const std::vector<std::string> kEmpty;
  const auto it = journals_.find(name);
  return it == journals_.end() ? kEmpty : it->second;
}

void StableStorage::truncate_journal(const std::string& name) {
  journals_.erase(name);
}

std::size_t StableStorage::size() const {
  std::size_t n = records_.size();
  for (const auto& [name, recs] : journals_) n += recs.size();
  return n;
}

}  // namespace condorg::sim
