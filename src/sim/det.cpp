#include "condorg/sim/det.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "condorg/sim/host.h"

namespace condorg::det {
namespace {

// Storage cap: a broken build can violate on every event; keeping the
// first kMaxRecorded is enough to diagnose while bounding memory.
constexpr std::size_t kMaxRecorded = 256;

// Guards storage() and g_count: island workers can record violations
// concurrently. Harvesting (take_violations/report) happens only from
// quiescent harness code. A violating run's *recording order* may vary
// with the interleaving — the clean-run contract (count == 0), which is
// what the digest tests assert, is interleaving-independent.
std::mutex& storage_mu() {
  // lint-allow(mutable-global): detsan's own lock, see above
  static std::mutex mu;
  return mu;
}

std::vector<Violation>& storage() {
  // The sanitizer's own recording buffer; guarded by storage_mu().
  // lint-allow(mutable-global): detsan's own state, see above
  static std::vector<Violation> v;
  return v;
}
// lint-allow(mutable-global): see storage() above; guarded by storage_mu().
std::size_t g_count = 0;

// Per-thread stamp of the host whose event is being dispatched. Kept
// TU-local (not extern in det.h) so every access uses the direct TLS
// path — GCC's UBSan falsely reports null on the cross-TU TLS wrapper.
// lint-allow(mutable-global): thread-local dispatch stamp, see above
thread_local const sim::Host* g_current = nullptr;

void record(const sim::Host* owner, const char* label) {
  Violation violation;
  violation.when = owner != nullptr ? owner->now() : 0.0;
  violation.owner = owner != nullptr ? owner->name() : "<null>";
  violation.accessor = g_current != nullptr ? g_current->name() : "<null>";
  violation.label = label != nullptr ? label : "<unlabelled>";
  std::lock_guard<std::mutex> lock(storage_mu());
  ++g_count;
  std::vector<Violation>& v = storage();
  if (v.size() >= kMaxRecorded) return;
  v.push_back(std::move(violation));
}

}  // namespace

namespace detail {

// The process-wide arm flag is written only by set_enabled/arm_from_env
// before events run.
#ifdef CONDORG_DETSAN
// lint-allow(mutable-global): detsan arm flag, see above
bool g_enabled = true;
#else
// lint-allow(mutable-global): detsan arm flag, see above
bool g_enabled = false;
#endif

const sim::Host* swap_current(const sim::Host* host) {
  const sim::Host* previous = g_current;
  g_current = host;
  return previous;
}

void check_slow(const sim::Host* owner, const char* label) {
  if (g_current != nullptr && g_current != owner) record(owner, label);
}

}  // namespace detail

std::string Violation::format() const {
  char when_buf[32];
  std::snprintf(when_buf, sizeof(when_buf), "%.3f", when);
  return std::string("t=") + when_buf + " detsan: host '" + accessor +
         "' accessed '" + label + "' owned by host '" + owner + "'";
}

const sim::Host* current_host() { return g_current; }

void set_enabled(bool on) { detail::g_enabled = on; }

bool arm_from_env() {
  const char* env = std::getenv("CONDORG_DETSAN");
  if (env != nullptr && env[0] != '\0' &&
      !(env[0] == '0' && env[1] == '\0')) {
    detail::g_enabled = true;
  }
  return detail::g_enabled;
}

std::vector<Violation> take_violations() {
  std::lock_guard<std::mutex> lock(storage_mu());
  std::vector<Violation> out = std::move(storage());
  storage().clear();
  g_count = 0;
  return out;
}

std::size_t violation_count() {
  std::lock_guard<std::mutex> lock(storage_mu());
  const std::size_t count = g_count;
  return count;
}

std::size_t report(const char* what) {
  const std::size_t count = violation_count();
  const std::vector<Violation> violations = take_violations();
  for (const Violation& v : violations) {
    // lint-allow(direct-io): report() is the CLI epilogue; stderr is the
    std::fprintf(stderr, "%s: %s\n", what, v.format().c_str());  // contract
  }
  if (count > violations.size()) {
    // lint-allow(direct-io): CLI epilogue, see above
    std::fprintf(stderr, "%s: ... %zu further violations not stored\n", what,
                 count - violations.size());
  }
  if (count > 0) {
    // lint-allow(direct-io): CLI epilogue, see above
    std::fprintf(stderr, "%s: %zu detsan ownership violation(s)\n", what,
                 count);
  }
  return count;
}

}  // namespace condorg::det
