#include "condorg/sim/profiler.h"

#include <chrono>
#include <string_view>
#include <utility>

namespace condorg::sim {

std::uint64_t Profiler::clock_ns() {
  // The profiler measures the simulator's own execution cost, which is the
  // one legitimate wall-clock read in sim-visible code; everything exported
  // deterministically (counts, bytes) ignores it.
  // lint-allow(wall-clock): profiler measures real handler cost, not sim time
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now).count());
}

std::string Profiler::daemon_family(const std::string& service) {
  // One JobManager service is registered per GRAM contact
  // ("gram.jm.<contact>", see gram::jobmanager_service); folding them keeps
  // the dispatch table bounded by daemon kinds, not by job count.
  constexpr std::string_view kJobManagerPrefix = "gram.jm.";
  if (service.rfind(kJobManagerPrefix, 0) == 0) return "gram.jm";
  return service;
}

void Profiler::record_message(const Message& message, std::uint64_t wall_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  Cell& cell = messages_[MessageKey(message.from.host, message.to.host,
                                    daemon_family(message.to.service),
                                    message.type)];
  ++cell.count;
  cell.bytes += message.size_bytes;
  cell.wall_ns += wall_ns;
}

void Profiler::record_timer(const std::string& host, std::uint64_t wall_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  Cell& cell = timers_[host];
  ++cell.count;
  cell.wall_ns += wall_ns;
}

std::map<std::string, Profiler::Cell> Profiler::cross_host_types() const {
  std::map<std::string, Cell> out;
  for (const auto& [key, cell] : messages_) {
    const auto& [from, to, daemon, type] = key;
    if (from == to) continue;
    Cell& agg = out[type];
    agg.count += cell.count;
    agg.bytes += cell.bytes;
    agg.wall_ns += cell.wall_ns;
  }
  return out;
}

util::JsonValue Profiler::to_json(bool include_wall) const {
  using util::JsonValue;
  JsonValue root = JsonValue::object();

  // Dispatch table: (to host, daemon, type) with senders folded.
  std::map<std::tuple<std::string, std::string, std::string>, Cell> dispatch;
  // Traffic matrix: from -> to -> type.
  std::map<std::string, std::map<std::string, std::map<std::string, Cell>>>
      matrix;
  for (const auto& [key, cell] : messages_) {
    const auto& [from, to, daemon, type] = key;
    Cell& d = dispatch[std::make_tuple(to, daemon, type)];
    d.count += cell.count;
    d.bytes += cell.bytes;
    d.wall_ns += cell.wall_ns;
    Cell& m = matrix[from][to][type];
    m.count += cell.count;
    m.bytes += cell.bytes;
    m.wall_ns += cell.wall_ns;
  }

  JsonValue dispatches = JsonValue::array();
  for (const auto& [key, cell] : dispatch) {
    JsonValue row = JsonValue::object();
    row["host"] = std::get<0>(key);
    row["daemon"] = std::get<1>(key);
    row["type"] = std::get<2>(key);
    row["count"] = cell.count;
    row["bytes"] = cell.bytes;
    if (include_wall) row["wall_ns"] = cell.wall_ns;
    dispatches.push_back(std::move(row));
  }
  root["dispatches"] = std::move(dispatches);

  JsonValue matrix_json = JsonValue::object();
  for (const auto& [from, dests] : matrix) {
    JsonValue dest_json = JsonValue::object();
    for (const auto& [to, types] : dests) {
      JsonValue type_json = JsonValue::object();
      for (const auto& [type, cell] : types) {
        JsonValue entry = JsonValue::object();
        entry["count"] = cell.count;
        entry["bytes"] = cell.bytes;
        if (include_wall) entry["wall_ns"] = cell.wall_ns;
        type_json[type] = std::move(entry);
      }
      dest_json[to] = std::move(type_json);
    }
    matrix_json[from] = std::move(dest_json);
  }
  root["traffic_matrix"] = std::move(matrix_json);

  JsonValue timers = JsonValue::object();
  for (const auto& [host, cell] : timers_) {
    JsonValue entry = JsonValue::object();
    entry["count"] = cell.count;
    if (include_wall) entry["wall_ns"] = cell.wall_ns;
    timers[host] = std::move(entry);
  }
  root["timers"] = std::move(timers);

  if (!island_rows_.empty()) {
    JsonValue islands = JsonValue::array();
    for (const IslandRow& row : island_rows_) {
      JsonValue entry = JsonValue::object();
      entry["events"] = row.events;
      entry["inbox_messages"] = row.inbox_messages;
      entry["epochs"] = row.epochs;
      if (include_wall) {
        entry["blocked_ns"] = row.blocked_ns;
        entry["busy_ns"] = row.busy_ns;
      }
      islands.push_back(std::move(entry));
    }
    root["islands"] = std::move(islands);
  }
  return root;
}

void Profiler::set_island_rows(std::vector<IslandRow> rows) {
  island_rows_ = std::move(rows);
}

}  // namespace condorg::sim
