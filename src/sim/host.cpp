#include "condorg/sim/host.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "condorg/sim/det.h"
#include "condorg/sim/schedule_controller.h"

namespace condorg::sim {
namespace {
/// post_coalesced grid (island mode only): status polls, lease renewals and
/// credential refreshes land on 25 ms edges so herd timers share calendar
/// buckets and windows stay fat. Two orders of magnitude below every
/// protocol interval in the system, so rounding is observable only as a
/// (deterministic) sub-grid phase shift.
constexpr Time kCoalesceGrid = 0.025;
}  // namespace

Host::Host(Simulation& sim, std::string name, std::uint32_t queue)
    : sim_(sim), name_(std::move(name)), queue_(queue) {}

EventId Host::post_at(Time when, std::function<void()> fn) {
  const Epoch expected = epoch_;
  return sim_.schedule_on_queue(
      queue_, when, [this, expected, fn = std::move(fn)] {
        if (alive_ && epoch_ == expected) {
          // DetSan: this event executes on this host.
          det::ScopedHost scope(this);
          run_profiled(fn);
        }
      });
}

EventId Host::post(Time delay, std::function<void()> fn) {
  return post_at(sim_.now() + delay, std::move(fn));
}

EventId Host::post_coalesced(Time delay, std::function<void()> fn) {
  Time when = sim_.now() + delay;
  if (sim_.island_mode()) {
    when = std::ceil(when / kCoalesceGrid) * kCoalesceGrid;
  }
  return post_at(when, std::move(fn));
}

EventId Host::post_any_epoch(Time delay, std::function<void()> fn) {
  return sim_.schedule_on_queue(
      queue_, sim_.now() + delay, [this, fn = std::move(fn)] {
        if (alive_) {
          det::ScopedHost scope(this);
          run_profiled(fn);
        }
      });
}

void Host::run_profiled(const std::function<void()>& fn) {
  Profiler& profiler = sim_.profiler();
  if (profiler.enabled()) {
    const std::uint64_t start = Profiler::clock_ns();
    fn();
    profiler.record_timer(name_, Profiler::clock_ns() - start);
  } else {
    fn();
  }
}

namespace {
/// Invoke each registered callback, re-checking before every call that it
/// is still registered: a callback may destroy objects that deregister
/// *other* callbacks (e.g. a gatekeeper's crash listener tears down
/// JobManagers whose RPC clients hold their own listeners). Invoking a
/// stale copy would be use-after-free.
void invoke_live(std::vector<std::pair<int, std::function<void()>>>& list) {
  std::vector<int> ids;
  ids.reserve(list.size());
  for (const auto& [id, fn] : list) ids.push_back(id);
  for (const int id : ids) {
    const auto it = std::find_if(list.begin(), list.end(),
                                 [id](const auto& e) { return e.first == id; });
    if (it == list.end()) continue;  // deregistered by an earlier callback
    const auto fn = it->second;      // copy: the callback may deregister itself
    fn();
  }
}
}  // namespace

void Host::crash() {
  if (!alive_) return;
  alive_ = false;
  ++epoch_;
  ++crash_count_;
  services_.clear();
  // Crash listeners run in this host's context (they tear down this
  // host's daemons), whatever context initiated the crash.
  det::ScopedHost scope(this);
  invoke_live(crash_listeners_);
}

void Host::restart() {
  if (alive_) return;
  alive_ = true;
  det::ScopedHost scope(this);
  invoke_live(boots_);
}

void Host::crash_for(Time downtime) {
  crash();
  // The restart runs on this host's own queue whatever context crashed it
  // (fault injection is control-queue code in island mode).
  sim_.schedule_on_queue(queue_, sim_.now() + downtime, [this] { restart(); });
}

bool Host::crash_point(const char* point) {
  if (!alive_) return false;
  ScheduleController* controller = sim_.controller();
  if (controller == nullptr) return false;
  double downtime = 30.0;
  if (!controller->inject_crash(name_, point, &downtime)) return false;
  sim_.schedule_in(0.0, [this, downtime] { crash_for(downtime); });
  return true;
}

int Host::add_boot(std::function<void()> fn) {
  const int id = next_listener_id_++;
  boots_.emplace_back(id, std::move(fn));
  return id;
}

void Host::remove_boot(int id) {
  std::erase_if(boots_, [id](const auto& entry) { return entry.first == id; });
}

int Host::add_crash_listener(std::function<void()> fn) {
  const int id = next_listener_id_++;
  crash_listeners_.emplace_back(id, std::move(fn));
  return id;
}

void Host::remove_crash_listener(int id) {
  std::erase_if(crash_listeners_,
                [id](const auto& entry) { return entry.first == id; });
}

void Host::register_service(const std::string& service, Handler handler) {
  // Two live daemons behind one service name would silently steal each
  // other's traffic; a crash clears services_ and destructors unregister,
  // so a collision is always a wiring bug, never a recovery race.
  if (services_.count(service) != 0) {
    throw std::logic_error("host " + name_ + ": service '" + service +
                           "' is already registered");
  }
  services_[service] = std::move(handler);
}

void Host::unregister_service(const std::string& service) {
  services_.erase(service);
}

const Host::Handler* Host::find_service(const std::string& service) const {
  const auto it = services_.find(service);
  return it == services_.end() ? nullptr : &it->second;
}

}  // namespace condorg::sim
