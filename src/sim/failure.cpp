#include "condorg/sim/failure.h"

#include <utility>

namespace condorg::sim {

FailureInjector::FailureInjector(World& world) : world_(world) {}

void FailureInjector::crash_at(const std::string& host, Time when,
                               Time downtime) {
  world_.sim().schedule_at(when, [this, host, downtime] {
    Host* h = world_.find_host(host);
    if (h == nullptr || !h->alive()) return;
    ++crashes_;
    incidents_.push_back(
        {Incident::Kind::kCrash, host, world_.now(), downtime});
    h->crash_for(downtime);
  });
}

void FailureInjector::partition_at(const std::string& a, const std::string& b,
                                   Time when, Time duration) {
  world_.sim().schedule_at(when, [this, a, b, duration] {
    ++partitions_;
    incidents_.push_back(
        {Incident::Kind::kPartition, a + "|" + b, world_.now(), duration});
    world_.net().set_partitioned(a, b, true);
    world_.sim().schedule_in(
        duration, [this, a, b] { world_.net().set_partitioned(a, b, false); });
  });
}

void FailureInjector::add_crash_plan(const CrashPlan& plan) {
  util::Rng rng =
      world_.sim().make_rng("failure.crash." + plan.host +
                            std::to_string(static_cast<long long>(plan.start)));
  world_.sim().schedule_at(plan.start, [this, plan, rng]() mutable {
    schedule_next_crash(plan, rng);
  });
}

void FailureInjector::schedule_next_crash(const CrashPlan& plan,
                                          util::Rng rng) {
  const Time gap = rng.exponential(plan.mtbf_seconds);
  world_.sim().schedule_in(gap, [this, plan, rng]() mutable {
    if (!armed_ || world_.now() > plan.end) return;
    Host* h = world_.find_host(plan.host);
    if (h != nullptr && h->alive()) {
      const Time downtime = rng.exponential(plan.mean_downtime_seconds);
      ++crashes_;
      incidents_.push_back(
          {Incident::Kind::kCrash, plan.host, world_.now(), downtime});
      h->crash_for(downtime);
    }
    schedule_next_crash(plan, rng);
  });
}

void FailureInjector::add_partition_plan(const PartitionPlan& plan) {
  util::Rng rng = world_.sim().make_rng("failure.partition." + plan.host_a +
                                        "|" + plan.host_b);
  world_.sim().schedule_at(plan.start, [this, plan, rng]() mutable {
    schedule_next_partition(plan, rng);
  });
}

void FailureInjector::schedule_next_partition(const PartitionPlan& plan,
                                              util::Rng rng) {
  const Time gap = rng.exponential(plan.mtbf_seconds);
  world_.sim().schedule_in(gap, [this, plan, rng]() mutable {
    if (!armed_ || world_.now() > plan.end) return;
    const Time duration = rng.exponential(plan.mean_duration_seconds);
    ++partitions_;
    incidents_.push_back({Incident::Kind::kPartition,
                          plan.host_a + "|" + plan.host_b, world_.now(),
                          duration});
    world_.net().set_partitioned(plan.host_a, plan.host_b, true);
    world_.sim().schedule_in(duration, [this, plan] {
      world_.net().set_partitioned(plan.host_a, plan.host_b, false);
    });
    schedule_next_partition(plan, rng);
  });
}

}  // namespace condorg::sim
