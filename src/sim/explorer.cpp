#include "condorg/sim/explorer.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <iterator>
#include <set>
#include <utility>

#include "condorg/sim/det.h"
#include "condorg/util/strings.h"

namespace condorg::sim {
namespace {
const char* kind_name(ExploreChoice::Kind kind) {
  return kind == ExploreChoice::Kind::kCrash ? "crash" : "event";
}

// Sorted. Kept in lockstep with the Host::crash_point call sites and the
// crash_points claims in src/proto/protocols.json; condorg_proto.py scrapes
// this initializer by name, so keep one string literal per line.
constexpr const char* kEnumeratedCrashPoints[] = {
    "gatekeeper.restart_recv",
    "gatekeeper.submit_accepted",
    "gatekeeper.submit_recv",
    "gram.client.commit_send",
    "gram.client.contact_persist",
    "gram.client.submit_send",
    "gridmanager.submit_ack",
    "jobmanager.cancel_recv",
    "jobmanager.commit_recv",
    "jobmanager.refresh_recv",
    "jobmanager.update_gass_recv",
    "myproxy.store_recv",
    "portal.deliver_recv",
    "portal.submit_recv",
};
}  // namespace

const std::vector<std::string>& enumerated_crash_points() {
  static const std::vector<std::string> points(std::begin(kEnumeratedCrashPoints),
                                               std::end(kEnumeratedCrashPoints));
  return points;
}

// --- ScheduleTrace ---------------------------------------------------------

std::string ScheduleTrace::serialize() const {
  std::string out = "condorg-explore-trace v1\n";
  out += "scenario " + scenario + "\n";
  out += "seed " + std::to_string(seed) + "\n";
  for (const ExploreChoice& c : choices) {
    out += util::format("choice %s %u %u %016llx\n", kind_name(c.kind),
                        c.chosen, c.alternatives,
                        static_cast<unsigned long long>(c.state_hash));
  }
  out += "end\n";
  return out;
}

bool ScheduleTrace::parse(const std::string& text, ScheduleTrace* out) {
  ScheduleTrace trace;
  bool saw_header = false;
  bool saw_end = false;
  for (const std::string& line : util::split(text, '\n')) {
    if (line.empty()) continue;
    const std::vector<std::string> tokens = util::split(line, ' ');
    if (!saw_header) {
      if (tokens.size() != 2 || tokens[0] != "condorg-explore-trace" ||
          tokens[1] != "v1") {
        return false;
      }
      saw_header = true;
      continue;
    }
    if (tokens[0] == "scenario" && tokens.size() == 2) {
      trace.scenario = tokens[1];
    } else if (tokens[0] == "seed" && tokens.size() == 2) {
      trace.seed = std::strtoull(tokens[1].c_str(), nullptr, 10);
    } else if (tokens[0] == "choice" && tokens.size() == 5) {
      ExploreChoice c;
      if (tokens[1] == "crash") {
        c.kind = ExploreChoice::Kind::kCrash;
      } else if (tokens[1] == "event") {
        c.kind = ExploreChoice::Kind::kEvent;
      } else {
        return false;
      }
      c.chosen = static_cast<std::uint32_t>(
          std::strtoul(tokens[2].c_str(), nullptr, 10));
      c.alternatives = static_cast<std::uint32_t>(
          std::strtoul(tokens[3].c_str(), nullptr, 10));
      c.state_hash = std::strtoull(tokens[4].c_str(), nullptr, 16);
      trace.choices.push_back(c);
    } else if (tokens[0] == "end" && tokens.size() == 1) {
      saw_end = true;
      break;
    } else {
      return false;
    }
  }
  if (!saw_header || !saw_end) return false;
  *out = std::move(trace);
  return true;
}

// --- ScheduleOracle --------------------------------------------------------

ScheduleOracle::ScheduleOracle(const Config& config,
                               std::vector<ExploreChoice> forced)
    : config_(config), forced_(std::move(forced)) {}

std::uint64_t ScheduleOracle::state_hash(std::uint64_t salt) const {
  // The probe reads cross-host daemon state and may be invoked from inside
  // a stamped event (inject_crash fires at a crash_point in daemon code);
  // it is harness-privileged, so run it with no current host.
  det::ScopedHost privileged(nullptr);
  return util::fnv1a_mix(salt, probe_ ? probe_() : 0);
}

std::optional<std::uint32_t> ScheduleOracle::next_forced(
    ExploreChoice::Kind kind) {
  if (cursor_ >= forced_.size()) return std::nullopt;
  const ExploreChoice& f = forced_[cursor_++];
  // A kind mismatch means the trace came from a different build of the
  // scenario; fall back to the default rather than crash-looping a replay.
  if (f.kind != kind) return 0;
  return f.chosen;
}

std::size_t ScheduleOracle::pick_event(Time when, std::size_t count) {
  const auto branch = static_cast<std::uint32_t>(
      std::min(count, std::max<std::size_t>(config_.max_branch, 1)));
  const std::optional<std::uint32_t> forced = next_forced(
      ExploreChoice::Kind::kEvent);
  if (!forced && record_.size() >= config_.max_choice_points) {
    return 0;  // budget spent: unrecorded FIFO tail
  }
  std::uint32_t chosen = 0;
  if (forced) {
    chosen = *forced % branch;
  } else if (random_) {
    chosen = static_cast<std::uint32_t>(random_->below(branch));
  }
  std::uint64_t when_bits = 0;
  static_assert(sizeof(when_bits) == sizeof(when));
  std::memcpy(&when_bits, &when, sizeof(when_bits));
  record_.push_back(ExploreChoice{
      ExploreChoice::Kind::kEvent, chosen, branch,
      state_hash(util::fnv1a_mix(when_bits, count))});
  return chosen;
}

bool ScheduleOracle::inject_crash(const std::string& host, const char* point,
                                  double* downtime) {
  const std::vector<std::string>& known = enumerated_crash_points();
  if (!std::binary_search(known.begin(), known.end(), point)) {
    // Record the drift whether or not we crash here: the point exists in
    // code but not in the table, so the DFS cannot claim fault coverage.
    if (!std::binary_search(unknown_points_.begin(), unknown_points_.end(),
                            point)) {
      unknown_points_.insert(std::lower_bound(unknown_points_.begin(),
                                              unknown_points_.end(), point),
                             point);
    }
  }
  if (crashes_injected_ >= config_.crash_budget) return false;
  const std::optional<std::uint32_t> forced = next_forced(
      ExploreChoice::Kind::kCrash);
  if (!forced && record_.size() >= config_.max_choice_points) return false;
  bool crash = false;
  if (forced) {
    crash = *forced != 0;
  } else if (random_) {
    // Uniform would crash at half of all protocol steps; keep randomized
    // runs mostly-healthy so they get deep into the protocol.
    crash = random_->below(8) == 0;
  }
  record_.push_back(ExploreChoice{
      ExploreChoice::Kind::kCrash, crash ? 1u : 0u, 2,
      state_hash(util::fnv1a_mix(util::fnv1a(host), util::fnv1a(point)))});
  if (crash) {
    ++crashes_injected_;
    *downtime = config_.crash_downtime;
  }
  return crash;
}

// --- Explorer --------------------------------------------------------------

Explorer::Explorer(std::string scenario_name, Scenario scenario, Config config)
    : name_(std::move(scenario_name)),
      scenario_(std::move(scenario)),
      config_(std::move(config)) {}

Explorer::RunRecord Explorer::run_one(
    const std::vector<ExploreChoice>& forced,
    const util::Rng* random_tail) const {
  ScheduleOracle oracle(config_.oracle, forced);
  if (random_tail != nullptr) oracle.set_random_tail(*random_tail);
  RunRecord run;
  run.outcome = scenario_(oracle);
  for (const std::string& point : oracle.unknown_points()) {
    run.outcome.violations.push_back(
        "explorer/unenumerated-crash-point: code offered crash point \"" +
        point + "\" that is missing from kEnumeratedCrashPoints");
  }
  run.record = oracle.record();
  return run;
}

Explorer::Result Explorer::explore() {
  Result result;
  std::set<std::uint64_t> digests;
  // (state hash, kind|alternative) pairs already expanded: flipping the same
  // alternative from an equivalent world state explores an equivalent
  // suffix, so the second occurrence is pruned.
  std::set<std::pair<std::uint64_t, std::uint64_t>> expanded;

  auto note_run = [&](const RunRecord& run) {
    ++result.runs;
    digests.insert(run.outcome.trace_digest);
    if (run.outcome.violations.empty()) return false;
    result.violation_found = true;
    result.violations = run.outcome.violations;
    result.counterexample.scenario = name_;
    result.counterexample.seed = config_.seed;
    result.counterexample.choices = run.record;
    return config_.stop_on_violation;
  };

  struct WorkItem {
    std::vector<ExploreChoice> prefix;
    std::size_t branch_from = 0;  // positions before this were branched
  };
  std::vector<WorkItem> stack;
  stack.push_back(WorkItem{});
  bool stopped_early = false;
  while (!stack.empty()) {
    if (result.runs >= config_.max_schedules) {
      stopped_early = true;
      break;
    }
    const WorkItem item = std::move(stack.back());
    stack.pop_back();
    const RunRecord run = run_one(item.prefix, nullptr);
    if (note_run(run)) {
      stopped_early = true;
      break;
    }
    // Branch only at positions this item is responsible for — earlier ones
    // were enqueued when the parent prefix ran. Push ascending so the
    // deepest (rightmost) branch is explored first: classic DFS order.
    for (std::size_t i = item.branch_from; i < run.record.size(); ++i) {
      const ExploreChoice& c = run.record[i];
      for (std::uint32_t alt = 0; alt < c.alternatives; ++alt) {
        if (alt == c.chosen) continue;
        const auto key = std::make_pair(
            c.state_hash,
            static_cast<std::uint64_t>(c.kind) << 32 | alt);
        if (!expanded.insert(key).second) {
          ++result.pruned;
          continue;
        }
        WorkItem next;
        next.prefix.assign(run.record.begin(),
                           run.record.begin() + static_cast<long>(i));
        ExploreChoice flipped = c;
        flipped.chosen = alt;
        next.prefix.push_back(flipped);
        next.branch_from = i + 1;
        stack.push_back(std::move(next));
      }
    }
  }
  result.exhausted = stack.empty() && !stopped_early;

  if (!(result.violation_found && config_.stop_on_violation)) {
    for (std::size_t i = 0; i < config_.random_runs; ++i) {
      const util::Rng rng(util::fnv1a_mix(config_.seed, i + 1));
      const RunRecord run = run_one({}, &rng);
      if (note_run(run)) break;
    }
  }
  result.distinct_schedules = digests.size();
  return result;
}

RunOutcome Explorer::replay(const ScheduleTrace& trace) const {
  return run_one(trace.choices, nullptr).outcome;
}

}  // namespace condorg::sim
