#include "condorg/sim/rpc.h"

#include <utility>

namespace condorg::sim {
namespace {
constexpr const char* kRpcId = "rpc.id";
constexpr const char* kRpcReplyTo = "rpc.reply_to";
}  // namespace

RpcClient::RpcClient(Host& host, Network& network, std::string service)
    : host_(host), network_(network), service_(std::move(service)) {
  install_handler();
  // A crash invalidates every outstanding call: the in-flight state was
  // volatile. Callbacks are NOT invoked — their owners died with the host.
  crash_listener_ = host_.add_crash_listener([this] {
    for (auto& [id, pending] : pending_) {
      host_.sim().cancel(pending.timeout_event);
    }
    pending_.clear();
  });
  // Re-install the reply handler when the host reboots so a reconstructed
  // daemon can reuse this client.
  boot_id_ = host_.add_boot([this] { install_handler(); });
}

RpcClient::~RpcClient() {
  // Outstanding timeout events must not fire into a destroyed client.
  for (auto& [id, pending] : pending_) {
    host_.sim().cancel(pending.timeout_event);
  }
  host_.remove_crash_listener(crash_listener_);
  host_.remove_boot(boot_id_);
  if (host_.alive()) host_.unregister_service(service_);
}

void RpcClient::install_handler() {
  host_.register_service(service_,
                         [this](const Message& m) { on_message(m); });
}

void RpcClient::call(const Address& to, const std::string& type,
                     Payload payload, double timeout_seconds,
                     Callback callback) {
  const std::uint64_t id = next_id_++;
  payload.set_uint(kRpcId, id);
  payload.set(kRpcReplyTo, address().str());

  const EventId timeout_event = host_.post(timeout_seconds, [this, id] {
    const auto it = pending_.find(id);
    if (it == pending_.end()) return;
    Callback cb = std::move(it->second.callback);
    pending_.erase(it);
    cb(false, Payload{});
  });
  pending_.emplace(id, Pending{std::move(callback), timeout_event});

  Message message;
  message.from = address();
  message.to = to;
  message.type = type;
  message.body = std::move(payload);
  network_.send(std::move(message));
}

void RpcClient::notify(const Address& to, const std::string& type,
                       Payload payload) {
  Message message;
  message.from = address();
  message.to = to;
  message.type = type;
  message.body = std::move(payload);
  network_.send(std::move(message));
}

void RpcClient::on_message(const Message& message) {
  const std::uint64_t id = message.body.get_uint(kRpcId);
  const auto it = pending_.find(id);
  if (it == pending_.end()) return;  // late reply after timeout: drop
  host_.sim().cancel(it->second.timeout_event);
  Callback cb = std::move(it->second.callback);
  pending_.erase(it);
  cb(true, message.body);
}

void rpc_reply(Network& network, const Message& request, const Address& from,
               Payload reply) {
  reply.set_uint(kRpcId, request.body.get_uint(kRpcId));
  Message message;
  message.from = from;
  message.to = Address::parse(request.body.get(kRpcReplyTo));
  message.type = request.type + ".reply";
  message.body = std::move(reply);
  network.send(std::move(message));
}

}  // namespace condorg::sim
