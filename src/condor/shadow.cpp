#include "condorg/condor/shadow.h"

#include <utility>

namespace condorg::condor {

Shadow::Shadow(
    sim::Host& host, sim::Network& network, ShadowJob job,
    sim::Address startd, std::string claim_id, ShadowOptions options,
    std::function<void(const std::string&)> on_done,
    std::function<void(const std::string&, double, const std::string&)>
        on_requeue)
    : host_(host),
      network_(network),
      job_(std::move(job)),
      startd_(std::move(startd)),
      claim_id_(std::move(claim_id)),
      service_("shadow." + claim_id_),
      options_(options),
      on_done_(std::move(on_done)),
      on_requeue_(std::move(on_requeue)),
      rpc_(host, network, service_ + ".rpc") {
  host_.register_service(service_,
                         [this](const sim::Message& m) { on_message(m); });
}

Shadow::~Shadow() {
  host_.sim().cancel(poll_event_);  // the timer must not outlive us
  if (host_.alive()) host_.unregister_service(service_);
}

void Shadow::start() {
  sim::Payload claim;
  claim.set("claim_id", claim_id_);
  claim.set("job_id", job_.job_id);
  claim.set("shadow", address().str());
  rpc_.call(startd_, "startd.claim", std::move(claim), options_.rpc_timeout,
            [this](bool ok, const sim::Payload& reply) {
              if (outcome_ != Outcome::kPending) return;
              if (!ok || !reply.get_bool("ok")) {
                finish(Outcome::kRequeued, "claim failed");
                return;
              }
              sim::Payload activate;
              activate.set("claim_id", claim_id_);
              activate.set("job_id", job_.job_id);
              activate.set_double("total_work", job_.total_work_seconds);
              activate.set_double("work_done", job_.checkpointed_work);
              rpc_.call(startd_, "startd.activate", std::move(activate),
                        options_.rpc_timeout,
                        [this](bool ok2, const sim::Payload& reply2) {
                          if (outcome_ != Outcome::kPending) return;
                          if (!ok2 || !reply2.get_bool("ok")) {
                            release_slot();
                            finish(Outcome::kRequeued, "activation failed");
                            return;
                          }
                          activated_ = true;
                          poll_event_ = host_.post(options_.poll_interval,
                                                   [this] { poll(); });
                        });
            });
}

void Shadow::on_message(const sim::Message& message) {
  // Stale-claim messages are dropped on purpose: the startd's bounded
  // retries give up, and the claim whose shadow would have acked is gone.
  // lint-allow(reply-on-all-paths): deliberate drop of stale-claim traffic
  if (message.body.get("claim_id") != claim_id_) return;  // stale sender

  if (message.type == "shadow.io") {
    ++io_ops_;
    io_bytes_ += message.body.get_uint("bytes");
    return;  // one-way, no ack
  }

  // done / evict / checkpoint are acked so the startd stops retrying.
  sim::Payload ack;
  ack.set_bool("ok", true);
  sim::rpc_reply(network_, message, address(), std::move(ack));

  if (outcome_ != Outcome::kPending) return;  // duplicate after finish

  if (message.type == "shadow.checkpoint") {
    ++checkpoints_;
    job_.checkpointed_work =
        std::max(job_.checkpointed_work, message.body.get_double("work_done"));
    return;
  }
  if (message.type == "shadow.done") {
    job_.checkpointed_work = job_.total_work_seconds;
    finish(Outcome::kDone, "completed");
    return;
  }
  if (message.type == "shadow.evict") {
    job_.checkpointed_work =
        std::max(job_.checkpointed_work, message.body.get_double("work_done"));
    finish(Outcome::kRequeued, message.body.get("reason"));
    return;
  }
  // Already acked above (so the startd stops retrying) but nobody handled
  // it: protocol drift the auditor's no-unknown-messages check surfaces.
  host_.metrics()
      .counter("unknown_message",
               {{"daemon", "shadow"}, {"type", message.type}})
      .inc();
}

void Shadow::poll() {
  if (outcome_ != Outcome::kPending || !activated_) return;
  sim::Payload status;
  status.set("job_id", job_.job_id);
  rpc_.call(startd_, "startd.status", std::move(status),
            options_.rpc_timeout,
            [this](bool ok, const sim::Payload& reply) {
              if (outcome_ != Outcome::kPending) return;
              const bool healthy = ok && reply.get_bool("ok") &&
                                   reply.get("job_id") == job_.job_id &&
                                   reply.get("state") == "Running";
              if (healthy) {
                missed_polls_ = 0;
                // Opportunistically fold the reported progress in, so a
                // subsequent crash costs at most one poll interval.
                job_.checkpointed_work = std::max(
                    job_.checkpointed_work, reply.get_double("work_done"));
              } else if (!ok) {
                if (++missed_polls_ >= options_.max_missed_polls) {
                  finish(Outcome::kRequeued, "execution machine lost");
                  return;
                }
              } else {
                // Startd answered but no longer runs our job and no evict
                // notice reached us (e.g. claim broken by the owner): the
                // definitive done/evict may still be in flight, so wait one
                // more poll round before declaring the execution lost.
                if (++missed_polls_ >= options_.max_missed_polls) {
                  finish(Outcome::kRequeued, "claim lost");
                  return;
                }
              }
              poll_event_ =
                  host_.post(options_.poll_interval, [this] { poll(); });
            });
}

void Shadow::release_slot() {
  sim::Payload release;
  release.set("claim_id", claim_id_);
  rpc_.call(startd_, "startd.release", std::move(release),
            options_.rpc_timeout, [](bool, const sim::Payload&) {});
}

void Shadow::finish(Outcome outcome, const std::string& reason) {
  if (outcome_ != Outcome::kPending) return;
  outcome_ = outcome;
  if (outcome == Outcome::kDone) {
    if (on_done_) on_done_(job_.job_id);
  } else {
    if (on_requeue_) on_requeue_(job_.job_id, job_.checkpointed_work, reason);
  }
}

}  // namespace condorg::condor
