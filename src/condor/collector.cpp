#include "condorg/condor/collector.h"

#include <algorithm>
#include <utility>

#include "condorg/classad/parser.h"

namespace condorg::condor {

Collector::Collector(sim::Host& host, sim::Network& network)
    : host_(host),
      network_(network),
      entries_(host, "collector.entries"),
      expiry_heap_(host, "collector.expiry_heap") {
  install();
  boot_id_ = host_.add_boot([this] { install(); });
  crash_listener_ = host_.add_crash_listener([this] {
    entries_->clear();
    expiry_heap_->clear();
  });
}

Collector::~Collector() {
  host_.remove_boot(boot_id_);
  host_.remove_crash_listener(crash_listener_);
  if (host_.alive()) host_.unregister_service(kService);
}

void Collector::install() {
  host_.register_service(kService,
                         [this](const sim::Message& m) { on_message(m); });
}

void Collector::on_message(const sim::Message& message) {
  if (message.type == "collector.advertise") {
    const std::string name = message.body.get("name");
    if (name.empty()) return;
    try {
      Entry entry;
      entry.ad = std::make_shared<const classad::ClassAd>(
          classad::parse_ad(message.body.get("ad")));
      entry.expires_at = host_.now() + message.body.get_double("ttl", 900.0);
      expiry_heap_->push_back(Deadline{entry.expires_at, name});
      std::push_heap(expiry_heap_->begin(), expiry_heap_->end(),
                     [](const Deadline& a, const Deadline& b) {
                       return a.after(b);
                     });
      (*entries_)[name] = std::move(entry);
      ++ads_received_;
    } catch (const classad::ParseError&) {
      // Drop malformed ads silently (UDP-like semantics in real Condor).
    }
    return;
  }
  if (message.type == "collector.invalidate") {
    entries_->erase(message.body.get("name"));
    return;
  }
  // Advertise traffic is one-way (UDP-like), so there is no error reply to
  // send; count the drop instead of losing it silently.
  host_.metrics()
      .counter("unknown_message",
               {{"daemon", "collector"}, {"type", message.type}})
      .inc();
}

void Collector::prune() const {
  const sim::Time now = host_.now();
  const auto after = [](const Deadline& a, const Deadline& b) {
    return a.after(b);
  };
  while (!expiry_heap_->empty() && expiry_heap_->front().when <= now) {
    std::pop_heap(expiry_heap_->begin(), expiry_heap_->end(), after);
    const Deadline deadline = std::move(expiry_heap_->back());
    expiry_heap_->pop_back();
    const auto it = entries_->find(deadline.name);
    // Stale node if the name was re-advertised with a later deadline (the
    // newer node is still in the heap) or explicitly invalidated.
    if (it != entries_->end() && it->second.expires_at <= now) {
      entries_->erase(it);
    }
  }
}

std::vector<Collector::AdPtr> Collector::query(
    const classad::ExprPtr& constraint) const {
  prune();
  std::vector<AdPtr> out;
  out.reserve(entries_->size());
  for (const auto& [name, entry] : *entries_) {
    if (constraint) {
      const classad::Value v = constraint->evaluate(entry.ad.get(), nullptr);
      if (!v.is_bool() || !v.as_bool()) continue;
    }
    out.push_back(entry.ad);
  }
  return out;
}

std::size_t Collector::live_count() const {
  prune();
  return entries_->size();
}

void Collector::invalidate(const std::string& name) { entries_->erase(name); }

}  // namespace condorg::condor
