#include "condorg/condor/collector.h"

#include <algorithm>
#include <utility>

#include "condorg/classad/parser.h"
#include "condorg/util/rng.h"

namespace condorg::condor {

Collector::Collector(sim::Host& host, sim::Network& network)
    : host_(host),
      network_(network),
      entries_(host, "collector.entries"),
      expiry_heap_(host, "collector.expiry_heap"),
      shards_(host, "collector.shards"),
      delta_log_(host, "collector.delta_log"),
      change_seq_(host, "collector.change_seq", 0),
      noop_updates_(host, "collector.noop_updates", 0),
      noop_counter_(host.metrics().counter("collector_noop_updates",
                                           {{"host", host.name()}})) {
  install();
  boot_id_ = host_.add_boot([this] { install(); });
  crash_listener_ = host_.add_crash_listener([this] {
    entries_->clear();
    expiry_heap_->clear();
    shards_->clear();
    delta_log_->clear();
    // Sequence resets with the incarnation: a subscriber holding a larger
    // sequence number learns it must resync instead of trusting "no new
    // deltas" from an empty reborn pool.
    *change_seq_ = 0;
  });
}

Collector::~Collector() {
  host_.remove_boot(boot_id_);
  host_.remove_crash_listener(crash_listener_);
  if (host_.alive()) host_.unregister_service(kService);
}

void Collector::install() {
  host_.register_service(kService,
                         [this](const sim::Message& m) { on_message(m); });
}

std::string Collector::shard_of(const classad::ClassAd& ad) {
  if (const auto universe = ad.eval_string("JobUniverse")) {
    const auto status = ad.eval_string("JobStatus");
    return "job/" + *universe + "/" + (status ? *status : "Idle");
  }
  if (const auto state = ad.eval_string("State")) {
    return "machine/" + *state;
  }
  return "other";
}

void Collector::record_delta(const std::string& name, const std::string& shard,
                             AdPtr ad, std::uint64_t checksum) const {
  ++*change_seq_;
  delta_log_->push_back(
      Delta{*change_seq_, name, shard, std::move(ad), checksum});
  if (delta_log_->size() > kDeltaLogCap) {
    // Drop the older half in one move; readers that fall behind the floor
    // resync from a full query.
    delta_log_->erase(delta_log_->begin(),
                      delta_log_->begin() + kDeltaLogCap / 2);
  }
}

void Collector::drop_entry(const std::string& name, const Entry& entry) const {
  const auto shard_it = shards_->find(entry.shard);
  if (shard_it != shards_->end()) {
    shard_it->second.erase(name);
    if (shard_it->second.empty()) shards_->erase(shard_it);
  }
  record_delta(name, entry.shard, nullptr, 0);
}

void Collector::on_message(const sim::Message& message) {
  if (message.type == "collector.advertise") {
    const std::string name = message.body.get("name");
    if (name.empty()) return;
    const std::string raw = message.body.get("ad");
    const std::uint64_t checksum = util::fnv1a(raw);
    const sim::Time expires_at =
        host_.now() + message.body.get_double("ttl", 900.0);
    const auto push_deadline = [this](sim::Time when, const std::string& n) {
      expiry_heap_->push_back(Deadline{when, n});
      std::push_heap(expiry_heap_->begin(), expiry_heap_->end(),
                     [](const Deadline& a, const Deadline& b) {
                       return a.after(b);
                     });
    };
    const auto it = entries_->find(name);
    if (it != entries_->end() && it->second.checksum == checksum) {
      // Content-identical re-publish: refresh the lease, leave the views
      // and the change sequence alone.
      it->second.expires_at = expires_at;
      push_deadline(expires_at, name);
      ++*noop_updates_;
      noop_counter_.inc();
      ++ads_received_;
      return;
    }
    try {
      Entry entry;
      entry.ad = std::make_shared<const classad::ClassAd>(
          classad::parse_ad(raw));
      entry.expires_at = expires_at;
      entry.checksum = checksum;
      entry.shard = shard_of(*entry.ad);
      if (it != entries_->end() && it->second.shard != entry.shard) {
        // The ad migrated shards (e.g. Unclaimed -> Claimed): retire it
        // from the old view before the new one records the change.
        const auto old_it = shards_->find(it->second.shard);
        if (old_it != shards_->end()) {
          old_it->second.erase(name);
          if (old_it->second.empty()) shards_->erase(old_it);
        }
      }
      (*shards_)[entry.shard].insert(name);
      record_delta(name, entry.shard, entry.ad, entry.checksum);
      push_deadline(expires_at, name);
      (*entries_)[name] = std::move(entry);
      ++ads_received_;
    } catch (const classad::ParseError&) {
      // Drop malformed ads silently (UDP-like semantics in real Condor).
    }
    return;
  }
  if (message.type == "collector.invalidate") {
    invalidate(message.body.get("name"));
    return;
  }
  // Advertise traffic is one-way (UDP-like), so there is no error reply to
  // send; count the drop instead of losing it silently.
  host_.metrics()
      .counter("unknown_message",
               {{"daemon", "collector"}, {"type", message.type}})
      .inc();
}

void Collector::prune() const {
  const sim::Time now = host_.now();
  const auto after = [](const Deadline& a, const Deadline& b) {
    return a.after(b);
  };
  while (!expiry_heap_->empty() && expiry_heap_->front().when <= now) {
    std::pop_heap(expiry_heap_->begin(), expiry_heap_->end(), after);
    const Deadline deadline = std::move(expiry_heap_->back());
    expiry_heap_->pop_back();
    const auto it = entries_->find(deadline.name);
    // Stale node if the name was re-advertised with a later deadline (the
    // newer node is still in the heap) or explicitly invalidated.
    if (it != entries_->end() && it->second.expires_at <= now) {
      drop_entry(it->first, it->second);
      entries_->erase(it);
    }
  }
}

std::vector<Collector::AdPtr> Collector::query(
    const classad::ExprPtr& constraint) const {
  prune();
  std::vector<AdPtr> out;
  out.reserve(entries_->size());
  for (const auto& [name, entry] : *entries_) {
    if (constraint) {
      const classad::Value v = constraint->evaluate(entry.ad.get(), nullptr);
      if (!v.is_bool() || !v.as_bool()) continue;
    }
    out.push_back(entry.ad);
  }
  return out;
}

bool Collector::query_delta(std::uint64_t since,
                            std::vector<Delta>& out) const {
  prune();  // expiries become tombstone deltas before the replay
  if (since > *change_seq_) return false;  // a previous incarnation's seq
  if (since == *change_seq_) return true;  // fully caught up
  if (delta_log_->empty() || delta_log_->front().seq > since + 1) {
    return false;  // log truncated past the subscriber's position
  }
  for (const Delta& delta : *delta_log_) {
    if (delta.seq > since) out.push_back(delta);
  }
  return true;
}

std::vector<Collector::AdPtr> Collector::query_shard(
    const std::string& shard) const {
  prune();
  std::vector<AdPtr> out;
  const auto it = shards_->find(shard);
  if (it == shards_->end()) return out;
  out.reserve(it->second.size());
  for (const std::string& name : it->second) {
    const auto entry = entries_->find(name);
    if (entry != entries_->end()) out.push_back(entry->second.ad);
  }
  return out;
}

std::vector<std::string> Collector::shard_names() const {
  prune();
  std::vector<std::string> out;
  out.reserve(shards_->size());
  for (const auto& [shard, names] : *shards_) out.push_back(shard);
  return out;
}

std::size_t Collector::shard_size(const std::string& shard) const {
  prune();
  const auto it = shards_->find(shard);
  return it == shards_->end() ? 0 : it->second.size();
}

std::map<std::string, std::uint64_t> Collector::checksums() const {
  prune();
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, entry] : *entries_) out[name] = entry.checksum;
  return out;
}

Collector::AdPtr Collector::lookup(const std::string& name) const {
  prune();
  const auto it = entries_->find(name);
  return it == entries_->end() ? nullptr : it->second.ad;
}

std::size_t Collector::live_count() const {
  prune();
  return entries_->size();
}

void Collector::invalidate(const std::string& name) {
  const auto it = entries_->find(name);
  if (it == entries_->end()) return;
  drop_entry(it->first, it->second);
  entries_->erase(it);
}

}  // namespace condorg::condor
