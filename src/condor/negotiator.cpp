#include "condorg/condor/negotiator.h"

#include <cctype>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>

#include "condorg/classad/parser.h"

namespace condorg::condor {
namespace {

// ---------- Requirements pre-filter ----------
//
// A Requirements expression is usually a conjunction like
//   TARGET.Arch == "x86_64" && TARGET.Memory >= 512 && <opaque rest>
// Analyzing the AND-chain once per ad and resolving each counterparty's
// referenced attributes to literal values once per call lets most candidate
// pairs be decided with a hash lookup and a value compare instead of a full
// double-sided tree evaluation. Both directions are analyzed: job plans run
// against a table of slot attributes and slot plans against a table of job
// attributes; a job's `Rank = TARGET.Attr` resolves through the same table.
//
// Soundness: Requirements must evaluate to exactly TRUE for a match, and
// `a && b` is TRUE only when both operands are TRUE, so any conjunct that
// provably evaluates to FALSE/UNDEFINED/ERROR rules the pair out. Conjuncts
// are analyzed only when they are `TARGET.Attr <op> literal` (either operand
// order) with a fuzzy comparison operator: the TARGET scope pins resolution
// to the other ad (no MY-first fallback), an absent attribute is exactly
// UNDEFINED, and a literal-valued attribute feeds a typed replica of
// compare() — numbers/bools numerically, strings case-insensitively, mixed
// types ERROR — after BinaryExpr::eval's ERROR/UNDEFINED strictness checks.
// The MY-side operand may itself be an attribute reference when it resolves
// to a literal in the owning ad (captured at analyze time — evaluation
// would return exactly that value). When a plan covers the *entire*
// AND-chain and every
// referenced attribute resolved to a literal, all-conjuncts-hold is likewise
// an exact TRUE certificate for that side (AND of TRUEs is TRUE), so the
// full evaluator can be skipped; otherwise the undecided side falls back to
// half_match. The net result is byte-identical to
// match_jobs_to_slots_reference.

/// Case-insensitive attr-name interning shared by job plans and slot tables.
using NameTable =
    std::unordered_map<std::string, std::size_t, classad::AttrNameHash,
                       classad::AttrNameEq>;

struct Conjunct {
  /// The literal operand, pre-classified the way compare() coerces: numbers
  /// and bools compare numerically, strings case-insensitively, and an
  /// UNDEFINED/ERROR literal (kNever) can never make the conjunct TRUE.
  enum class LitKind : std::uint8_t { kNumber, kString, kNever };
  std::size_t attr_id = 0;  // interned TARGET attribute name
  classad::BinaryOp op = classad::BinaryOp::kEq;
  classad::Value literal;     // the MY-side literal operand
  LitKind lit_kind = LitKind::kNever;
  double num = 0.0;           // valid iff lit_kind == kNumber
  bool attr_on_left = true;   // TARGET.Attr <op> lit  vs  lit <op> TARGET.Attr
};

/// One attribute of one ad, resolved and type-classified once per call.
struct ResolvedAttr {
  enum class Kind : std::uint8_t {
    kAbsent,   // not in the ad: TARGET.attr is exactly UNDEFINED
    kOpaque,   // bound to a non-literal: only the evaluator can decide
    kNumber,   // numeric literal (int/real/bool), coerced value in `num`
    kString,   // string literal
    kReject,   // UNDEFINED/ERROR literal: strictness rejects pre-compare
  };
  Kind kind = Kind::kAbsent;
  double num = 0.0;
  const classad::Value* literal = nullptr;  // non-null for any literal kind
};

void collect_and_leaves(const classad::ExprPtr& expr,
                        std::vector<const classad::Expr*>& leaves) {
  const auto* bin = dynamic_cast<const classad::BinaryExpr*>(expr.get());
  if (bin != nullptr && bin->op() == classad::BinaryOp::kAnd) {
    collect_and_leaves(bin->lhs(), leaves);
    collect_and_leaves(bin->rhs(), leaves);
    return;
  }
  leaves.push_back(expr.get());
}

bool is_fuzzy_compare(classad::BinaryOp op) {
  switch (op) {
    case classad::BinaryOp::kLess:
    case classad::BinaryOp::kLessEq:
    case classad::BinaryOp::kGreater:
    case classad::BinaryOp::kGreaterEq:
    case classad::BinaryOp::kEq:
    case classad::BinaryOp::kNotEq:
      return true;
    default:
      return false;
  }
}

std::size_t intern(NameTable& table, std::vector<std::string>& names,
                   const std::string& name) {
  const auto it = table.find(std::string_view(name));
  if (it != table.end()) return it->second;
  const std::size_t id = names.size();
  names.push_back(name);
  table.emplace(name, id);
  return id;
}

/// One side's Requirements, compiled. `complete` means the conjuncts cover
/// the whole AND-chain (or the attribute is absent, which is uncondition-
/// ally true), so all-conjuncts-hold certifies this side without fallback —
/// unless a referenced attribute turns out opaque for a given counterparty.
struct Plan {
  std::vector<Conjunct> conjuncts;
  bool complete = false;
};

/// The literal value of a conjunct's MY-side operand, if it has one: either
/// a literal subtree (possibly parse-time folded), or an attribute reference
/// that resolves *in the owning ad* to a literal binding. MY-scoped and
/// unscoped refs both resolve MY-first; when the name is bound to a literal
/// there, evaluation returns exactly that value regardless of TARGET, so
/// capturing it at analyze time is sound. Anything else — absent (an
/// unscoped ref would fall through to TARGET), or bound to a non-literal —
/// returns nullptr and the conjunct stays unanalyzed.
const classad::Value* my_side_literal(const classad::Expr* e,
                                      const classad::ClassAd& my,
                                      classad::ExprPtr& keep_alive) {
  if (const classad::Value* lit = e->literal()) return lit;
  const auto* ref = dynamic_cast<const classad::AttrRefExpr*>(e);
  if (ref == nullptr || ref->scope() == classad::AttrScope::kTarget) {
    return nullptr;
  }
  keep_alive = my.lookup(ref->name());
  if (!keep_alive) return nullptr;
  return keep_alive->literal();
}

Plan analyze_requirements(const classad::ExprPtr& req,
                          const classad::ClassAd& my, NameTable& table,
                          std::vector<std::string>& names) {
  Plan plan;
  if (!req) {
    plan.complete = true;  // absent Requirements matches anything
    return plan;
  }
  std::vector<const classad::Expr*> leaves;
  collect_and_leaves(req, leaves);
  plan.complete = true;
  for (const classad::Expr* leaf : leaves) {
    const auto* bin = dynamic_cast<const classad::BinaryExpr*>(leaf);
    if (bin == nullptr || !is_fuzzy_compare(bin->op())) {
      plan.complete = false;
      continue;
    }
    const auto* lref =
        dynamic_cast<const classad::AttrRefExpr*>(bin->lhs().get());
    const auto* rref =
        dynamic_cast<const classad::AttrRefExpr*>(bin->rhs().get());
    classad::ExprPtr keep_alive;
    Conjunct c;
    if (lref != nullptr && lref->scope() == classad::AttrScope::kTarget) {
      const classad::Value* rlit =
          my_side_literal(bin->rhs().get(), my, keep_alive);
      if (rlit == nullptr) {
        plan.complete = false;
        continue;
      }
      c.attr_id = intern(table, names, lref->name());
      c.literal = *rlit;
      c.attr_on_left = true;
    } else if (rref != nullptr &&
               rref->scope() == classad::AttrScope::kTarget) {
      const classad::Value* llit =
          my_side_literal(bin->lhs().get(), my, keep_alive);
      if (llit == nullptr) {
        plan.complete = false;
        continue;
      }
      c.attr_id = intern(table, names, rref->name());
      c.literal = *llit;
      c.attr_on_left = false;
    } else {
      plan.complete = false;
      continue;
    }
    c.op = bin->op();
    double d = 0.0;
    if (c.literal.to_number(d)) {
      c.lit_kind = Conjunct::LitKind::kNumber;
      c.num = d;
    } else if (c.literal.is_string()) {
      c.lit_kind = Conjunct::LitKind::kString;
    } else {
      c.lit_kind = Conjunct::LitKind::kNever;
    }
    plan.conjuncts.push_back(std::move(c));
  }
  return plan;
}

/// Allocation-free replica of compare()'s string ordering: to_lower() both
/// sides, lexicographic on the lowered bytes (std::string's element compare
/// is unsigned).
int ci_compare(const std::string& a, const std::string& b) {
  const std::size_t n = a.size() < b.size() ? a.size() : b.size();
  for (std::size_t i = 0; i < n; ++i) {
    const auto ca = static_cast<unsigned char>(
        std::tolower(static_cast<unsigned char>(a[i])));
    const auto cb = static_cast<unsigned char>(
        std::tolower(static_cast<unsigned char>(b[i])));
    if (ca != cb) return ca < cb ? -1 : 1;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

/// Exactly the result of full evaluation being TRUE, for a conjunct whose
/// TARGET side resolved to `sa` (kind kNumber or kString). Mirrors
/// BinaryExpr::eval + compare(): ERROR/UNDEFINED operands and mixed
/// incomparable types are never TRUE; numbers (bools coerced) compare
/// numerically, strings case-insensitively.
bool conjunct_holds(const Conjunct& c, const ResolvedAttr& sa) {
  int cmp;
  if (c.lit_kind == Conjunct::LitKind::kNumber &&
      sa.kind == ResolvedAttr::Kind::kNumber) {
    const double a = c.attr_on_left ? sa.num : c.num;
    const double b = c.attr_on_left ? c.num : sa.num;
    cmp = a < b ? -1 : (a > b ? 1 : 0);
  } else if (c.lit_kind == Conjunct::LitKind::kString &&
             sa.kind == ResolvedAttr::Kind::kString) {
    const std::string& a =
        c.attr_on_left ? sa.literal->as_string() : c.literal.as_string();
    const std::string& b =
        c.attr_on_left ? c.literal.as_string() : sa.literal->as_string();
    cmp = ci_compare(a, b);
  } else {
    return false;  // kNever or mixed types: ERROR under fuzzy compare
  }
  switch (c.op) {
    case classad::BinaryOp::kLess: return cmp < 0;
    case classad::BinaryOp::kLessEq: return cmp <= 0;
    case classad::BinaryOp::kGreater: return cmp > 0;
    case classad::BinaryOp::kGreaterEq: return cmp >= 0;
    case classad::BinaryOp::kEq: return cmp == 0;
    case classad::BinaryOp::kNotEq: return cmp != 0;
    default: return false;
  }
}

/// A job's Rank, compiled: absent (constant 0), a literal constant, a plain
/// TARGET attribute reference (resolved through the slot-attribute table),
/// or anything else (full eval_rank per candidate).
struct RankPlan {
  enum class Kind { kZero, kConstant, kAttr, kFull };
  Kind kind = Kind::kZero;
  double constant = 0.0;
  std::size_t attr_id = 0;
};

RankPlan analyze_rank(const classad::ExprPtr& rank, NameTable& table,
                      std::vector<std::string>& names) {
  RankPlan plan;
  if (!rank) return plan;  // kZero: eval_rank of a missing Rank is 0.0
  if (const classad::Value* lit = rank->literal()) {
    plan.kind = RankPlan::Kind::kConstant;
    double d = 0.0;
    plan.constant = lit->to_number(d) ? d : 0.0;
    return plan;
  }
  const auto* ref = dynamic_cast<const classad::AttrRefExpr*>(rank.get());
  if (ref != nullptr && ref->scope() == classad::AttrScope::kTarget) {
    plan.kind = RankPlan::Kind::kAttr;
    plan.attr_id = intern(table, names, ref->name());
    return plan;
  }
  plan.kind = RankPlan::Kind::kFull;
  return plan;
}

/// Resolve every interned attribute of every ad once, into a flat
/// row-per-ad table the per-pair loop can index directly. The `literal`
/// pointers alias expressions owned by the ads, which outlive the call.
template <typename LookupAd>
std::vector<ResolvedAttr> resolve_attrs(const std::vector<LookupAd>& ads,
                                        const std::vector<std::string>& names) {
  std::vector<ResolvedAttr> rows(ads.size() * names.size());
  for (std::size_t a = 0; a < ads.size(); ++a) {
    ResolvedAttr* row = &rows[a * names.size()];
    for (std::size_t n = 0; n < names.size(); ++n) {
      const classad::ExprPtr expr = ads[a]->lookup(names[n]);
      if (!expr) continue;  // stays kAbsent
      ResolvedAttr& ra = row[n];
      ra.literal = expr->literal();
      if (ra.literal == nullptr) {
        ra.kind = ResolvedAttr::Kind::kOpaque;
      } else if (ra.literal->to_number(ra.num)) {
        ra.kind = ResolvedAttr::Kind::kNumber;
      } else if (ra.literal->is_string()) {
        ra.kind = ResolvedAttr::Kind::kString;
      } else {
        ra.kind = ResolvedAttr::Kind::kReject;  // UNDEFINED/ERROR literal
      }
    }
  }
  return rows;
}

/// Run one side's plan against the counterparty's resolved attributes.
/// Returns false when the side is provably not TRUE; on true, `decided` is
/// set iff the plan certified the side TRUE (complete and no opaque attrs).
bool plan_passes(const Plan& plan, const ResolvedAttr* row, bool& decided) {
  decided = plan.complete;
  for (const Conjunct& c : plan.conjuncts) {
    const ResolvedAttr& sa = row[c.attr_id];
    switch (sa.kind) {
      case ResolvedAttr::Kind::kAbsent:  // TARGET.attr is exactly UNDEFINED
      case ResolvedAttr::Kind::kReject:
        return false;
      case ResolvedAttr::Kind::kOpaque:  // this side needs the evaluator
        decided = false;
        continue;
      default:
        if (!conjunct_holds(c, sa)) return false;
    }
  }
  return true;
}

}  // namespace

std::vector<Match> match_jobs_to_slots(
    const std::vector<IdleJob>& jobs,
    const std::vector<Collector::AdPtr>& slots) {
  // Compile both directions once: job Requirements + Rank, slot
  // Requirements. All attribute names share one interning table, so the
  // resolved rows below serve every plan.
  NameTable table;
  std::vector<std::string> names;
  std::vector<Plan> job_plans;
  std::vector<RankPlan> rank_plans;
  job_plans.reserve(jobs.size());
  rank_plans.reserve(jobs.size());
  for (const IdleJob& job : jobs) {
    job_plans.push_back(
        analyze_requirements(job.ad.requirements(), job.ad, table, names));
    rank_plans.push_back(analyze_rank(job.ad.rank(), table, names));
  }
  std::vector<Plan> slot_plans;
  slot_plans.reserve(slots.size());
  for (const Collector::AdPtr& slot : slots) {
    slot_plans.push_back(
        analyze_requirements(slot->requirements(), *slot, table, names));
  }

  // Resolve every referenced attribute on both sides, once per call.
  std::vector<ResolvedAttr> slot_attrs;
  std::vector<ResolvedAttr> job_attrs;
  if (!names.empty()) {
    slot_attrs = resolve_attrs(slots, names);
    std::vector<const classad::ClassAd*> job_ads;
    job_ads.reserve(jobs.size());
    for (const IdleJob& job : jobs) job_ads.push_back(&job.ad);
    job_attrs = resolve_attrs(job_ads, names);
  }

  std::vector<Match> matches;
  std::vector<bool> used(slots.size(), false);
  std::size_t slots_left = slots.size();
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    if (slots_left == 0) break;  // pool exhausted this cycle
    const IdleJob& job = jobs[j];
    const Plan& job_plan = job_plans[j];
    const RankPlan& rank_plan = rank_plans[j];
    const ResolvedAttr* job_row =
        names.empty() ? nullptr : &job_attrs[j * names.size()];
    std::size_t best = slots.size();
    double best_rank = 0;
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (used[i]) continue;
      const ResolvedAttr* slot_row =
          names.empty() ? nullptr : &slot_attrs[i * names.size()];
      // Job side: plan first, evaluator only if the plan couldn't certify.
      bool job_side_decided = false;
      if (!plan_passes(job_plan, slot_row, job_side_decided)) continue;
      if (!job_side_decided && !classad::half_match(job.ad, *slots[i])) {
        continue;
      }
      // Slot side, symmetrically.
      bool slot_side_decided = false;
      if (!plan_passes(slot_plans[i], job_row, slot_side_decided)) continue;
      if (!slot_side_decided && !classad::half_match(*slots[i], job.ad)) {
        continue;
      }
      double rank = 0.0;
      switch (rank_plan.kind) {
        case RankPlan::Kind::kZero:
          break;
        case RankPlan::Kind::kConstant:
          rank = rank_plan.constant;
          break;
        case RankPlan::Kind::kAttr: {
          const ResolvedAttr& sa = slot_row[rank_plan.attr_id];
          if (sa.kind == ResolvedAttr::Kind::kNumber) {
            rank = sa.num;
          } else if (sa.kind == ResolvedAttr::Kind::kOpaque) {
            rank = classad::eval_rank(job.ad, *slots[i]);
          }
          // kAbsent/kString/kReject: to_number fails → 0.0, like eval_rank
          break;
        }
        case RankPlan::Kind::kFull:
          rank = classad::eval_rank(job.ad, *slots[i]);
          break;
      }
      if (best == slots.size() || rank > best_rank) {
        best = i;
        best_rank = rank;
      }
    }
    if (best < slots.size()) {
      used[best] = true;
      --slots_left;
      matches.push_back(Match{job.job_id, *slots[best]});
    }
  }
  return matches;
}

std::vector<Match> match_jobs_to_slots(
    const std::vector<IdleJob>& jobs,
    const std::vector<classad::ClassAd>& slots) {
  std::vector<Collector::AdPtr> views;
  views.reserve(slots.size());
  for (const classad::ClassAd& slot : slots) {
    // Non-owning alias: the caller's vector outlives this call.
    views.emplace_back(Collector::AdPtr{}, &slot);
  }
  return match_jobs_to_slots(jobs, views);
}

std::vector<Match> match_jobs_to_slots_reference(
    const std::vector<IdleJob>& jobs,
    const std::vector<Collector::AdPtr>& slots) {
  std::vector<Match> matches;
  std::vector<bool> used(slots.size(), false);
  std::size_t slots_left = slots.size();
  for (const IdleJob& job : jobs) {
    if (slots_left == 0) break;  // pool exhausted this cycle
    std::size_t best = slots.size();
    double best_rank = 0;
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (used[i]) continue;
      if (!classad::symmetric_match(job.ad, *slots[i])) continue;
      const double rank = classad::eval_rank(job.ad, *slots[i]);
      if (best == slots.size() || rank > best_rank) {
        best = i;
        best_rank = rank;
      }
    }
    if (best < slots.size()) {
      used[best] = true;
      --slots_left;
      matches.push_back(Match{job.job_id, *slots[best]});
    }
  }
  return matches;
}

Negotiator::Negotiator(sim::Host& host, Collector& collector, JobSource jobs,
                       MatchSink sink, Options options)
    : host_(host),
      collector_(collector),
      jobs_(std::move(jobs)),
      sink_(std::move(sink)),
      options_(std::move(options)),
      slot_constraint_(options_.slot_constraint.empty()
                           ? nullptr
                           : classad::parse_expr(options_.slot_constraint)),
      cycles_counter_(host_.metrics().counter("negotiator.cycles",
                                              {{"host", host_.name()}})),
      matches_counter_(host_.metrics().counter("negotiator.matches",
                                               {{"host", host_.name()}})),
      cycles_(host, "negotiator.cycles", 0),
      matches_(host, "negotiator.matches", 0) {
  boot_id_ = host_.add_boot([this] {
    if (started_) cycle();
  });
}

void Negotiator::start() {
  if (started_) return;
  started_ = true;
  cycle();
}

std::size_t Negotiator::negotiate_once() {
  ++*cycles_;
  cycles_counter_.inc();
  const std::vector<Collector::AdPtr> slots =
      collector_.query(slot_constraint_);
  const std::vector<IdleJob> jobs = jobs_();
  const std::vector<Match> matches = match_jobs_to_slots(jobs, slots);
  for (const Match& match : matches) {
    ++*matches_;
    matches_counter_.inc();
    sink_(match);
  }
  return matches.size();
}

void Negotiator::cycle() {
  negotiate_once();
  host_.post(options_.cycle_period, [this] { cycle(); });
}

}  // namespace condorg::condor
