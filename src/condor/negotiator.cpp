#include "condorg/condor/negotiator.h"

#include "condorg/classad/parser.h"

namespace condorg::condor {

std::vector<Match> match_jobs_to_slots(
    const std::vector<IdleJob>& jobs,
    const std::vector<classad::ClassAd>& slots) {
  std::vector<Match> matches;
  std::vector<bool> used(slots.size(), false);
  std::size_t slots_left = slots.size();
  for (const IdleJob& job : jobs) {
    if (slots_left == 0) break;  // pool exhausted this cycle
    std::size_t best = slots.size();
    double best_rank = 0;
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (used[i]) continue;
      if (!classad::symmetric_match(job.ad, slots[i])) continue;
      const double rank = classad::eval_rank(job.ad, slots[i]);
      if (best == slots.size() || rank > best_rank) {
        best = i;
        best_rank = rank;
      }
    }
    if (best < slots.size()) {
      used[best] = true;
      --slots_left;
      matches.push_back(Match{job.job_id, slots[best]});
    }
  }
  return matches;
}

Negotiator::Negotiator(sim::Host& host, Collector& collector, JobSource jobs,
                       MatchSink sink, Options options)
    : host_(host),
      collector_(collector),
      jobs_(std::move(jobs)),
      sink_(std::move(sink)),
      options_(options) {
  boot_id_ = host_.add_boot([this] {
    if (started_) cycle();
  });
}

void Negotiator::start() {
  if (started_) return;
  started_ = true;
  cycle();
}

std::size_t Negotiator::negotiate_once() {
  ++cycles_;
  host_.metrics()
      .counter("negotiator.cycles", {{"host", host_.name()}})
      .inc();
  static const classad::ExprPtr kUnclaimed =
      classad::parse_expr("State == \"Unclaimed\"");
  const std::vector<classad::ClassAd> slots = collector_.query(kUnclaimed);
  const std::vector<IdleJob> jobs = jobs_();
  const std::vector<Match> matches = match_jobs_to_slots(jobs, slots);
  for (const Match& match : matches) {
    ++matches_;
    host_.metrics()
        .counter("negotiator.matches", {{"host", host_.name()}})
        .inc();
    sink_(match);
  }
  return matches.size();
}

void Negotiator::cycle() {
  negotiate_once();
  host_.post(options_.cycle_period, [this] { cycle(); });
}

}  // namespace condorg::condor
