#include "condorg/condor/pool_negotiator.h"

#include <algorithm>
#include <set>
#include <utility>

#include "condorg/classad/parser.h"

namespace condorg::condor {

PoolNegotiator::PoolNegotiator(sim::Host& host, sim::Network& network,
                               Collector& collector, Options options)
    : host_(host),
      collector_(collector),
      options_(std::move(options)),
      slot_constraint_(options_.slot_constraint.empty()
                           ? nullptr
                           : classad::parse_expr(options_.slot_constraint)),
      rpc_(host, network, kService),
      mirror_(host, "pool_negotiator.mirror"),
      holds_(host, "pool_negotiator.holds"),
      last_seq_(host, "pool_negotiator.last_seq", 0),
      fair_share_(host, "pool_negotiator.fair_share", options_.fair_share),
      matched_by_user_(host, "pool_negotiator.matched_by_user"),
      violations_(host, "pool_negotiator.violations"),
      cycles_(host, "pool_negotiator.cycles", 0),
      matches_(host, "pool_negotiator.matches", 0),
      skipped_cycles_(host, "pool_negotiator.skipped_cycles", 0),
      full_resyncs_(host, "pool_negotiator.full_resyncs", 0),
      sweeps_(host, "pool_negotiator.sweeps", 0),
      divergences_(host, "pool_negotiator.divergences", 0),
      cycles_counter_(host.metrics().counter("pool_negotiator.cycles",
                                             {{"host", host.name()}})),
      matches_counter_(host.metrics().counter("pool_negotiator.matches",
                                              {{"host", host.name()}})),
      skipped_counter_(host.metrics().counter("pool_negotiator.skipped_cycles",
                                              {{"host", host.name()}})),
      divergence_counter_(host.metrics().counter(
          "pool_negotiator.divergences", {{"host", host.name()}})) {
  boot_id_ = host_.add_boot([this] {
    if (started_) cycle();
  });
  crash_listener_ = host_.add_crash_listener([this] {
    // The mirror is volatile; the colocated Collector resets its sequence
    // in the same crash, so the first post-boot cycle resyncs cleanly.
    mirror_->clear();
    holds_->clear();
    *last_seq_ = 0;
  });
}

PoolNegotiator::~PoolNegotiator() {
  host_.remove_boot(boot_id_);
  host_.remove_crash_listener(crash_listener_);
}

void PoolNegotiator::start() {
  if (started_) return;
  started_ = true;
  cycle();
}

void PoolNegotiator::cycle() {
  negotiate_once();
  host_.post(options_.cycle_period, [this] { cycle(); });
}

bool PoolNegotiator::classify_job(const classad::ClassAd& ad,
                                  std::string& user) {
  if (!ad.eval_string("JobUniverse")) return false;
  user = ad.eval_string("User").value_or("unknown");
  return true;
}

bool PoolNegotiator::slot_eligible(const MirrorEntry& entry,
                                   double now) const {
  if (entry.is_job) return false;
  if (entry.hold_until > now) return false;  // claim in flight
  if (slot_constraint_) {
    const classad::Value v =
        slot_constraint_->evaluate(entry.ad.get(), nullptr);
    if (!v.is_bool() || !v.as_bool()) return false;
  }
  return true;
}

bool PoolNegotiator::job_pending(const MirrorEntry& entry, double now) const {
  return entry.is_job && !(entry.hold_until > now);
}

void PoolNegotiator::resync() {
  // Holds are negotiator-local state the Collector knows nothing about;
  // carry live ones across the rebuild (dropping holds on ads the
  // Collector no longer has).
  const std::map<std::string, double> holds = *holds_;
  holds_->clear();
  mirror_->clear();
  for (const auto& [name, checksum] : collector_.checksums()) {
    const Collector::AdPtr ad = collector_.lookup(name);
    if (!ad) continue;
    MirrorEntry entry;
    entry.ad = ad;
    entry.checksum = checksum;
    entry.is_job = classify_job(*ad, entry.user);
    if (entry.is_job) fair_share_->note_user(entry.user);
    const auto hold = holds.find(name);
    if (hold != holds.end()) {
      entry.hold_until = hold->second;
      (*holds_)[name] = hold->second;
    }
    (*mirror_)[name] = std::move(entry);
  }
  *last_seq_ = collector_.change_seq();
}

std::vector<std::string> PoolNegotiator::ingest_deltas(bool& resynced) {
  std::vector<std::string> changed;
  std::vector<Collector::Delta> deltas;
  if (!collector_.query_delta(*last_seq_, deltas)) {
    resync();
    resynced = true;
    ++*full_resyncs_;
    return changed;
  }
  for (Collector::Delta& delta : deltas) {
    changed.push_back(delta.name);
    if (!delta.ad) {
      mirror_->erase(delta.name);
      holds_->erase(delta.name);
      continue;
    }
    MirrorEntry entry;
    entry.ad = std::move(delta.ad);
    entry.checksum = delta.checksum;
    entry.is_job = classify_job(*entry.ad, entry.user);
    if (entry.is_job) fair_share_->note_user(entry.user);
    // Replacement clears any hold: a changed ad re-enters negotiation.
    (*mirror_)[delta.name] = std::move(entry);
    holds_->erase(delta.name);
  }
  if (!deltas.empty()) *last_seq_ = deltas.back().seq;
  return changed;
}

std::vector<PoolNegotiator::Candidate> PoolNegotiator::eligible_slots(
    const std::vector<std::string>& changed, bool all_changed,
    double now) const {
  std::vector<Candidate> out;
  for (const auto& [name, entry] : *mirror_) {
    if (entry.is_job || !slot_eligible(entry, now)) continue;
    Candidate candidate;
    candidate.name = &name;
    candidate.entry = &entry;
    candidate.changed =
        all_changed ||
        std::binary_search(changed.begin(), changed.end(), name);
    out.push_back(candidate);
  }
  return out;
}

std::vector<PoolNegotiator::Candidate> PoolNegotiator::ordered_pending_jobs(
    const std::vector<std::string>& changed, bool all_changed, double now) {
  // Mirror order gives name order within each user; the fair-share table
  // decides the cross-user order.
  std::map<std::string, std::vector<Candidate>> by_user;
  for (const auto& [name, entry] : *mirror_) {
    if (!job_pending(entry, now)) continue;
    fair_share_->note_user(entry.user);
    Candidate candidate;
    candidate.name = &name;
    candidate.entry = &entry;
    candidate.changed =
        all_changed ||
        std::binary_search(changed.begin(), changed.end(), name);
    by_user[entry.user].push_back(candidate);
  }
  std::vector<Candidate> out;
  for (const std::string& user : fair_share_->priority_order(now)) {
    const auto it = by_user.find(user);
    if (it == by_user.end()) continue;
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  return out;
}

std::vector<Match> PoolNegotiator::match_candidates(
    const std::vector<Candidate>& jobs, const std::vector<Candidate>& slots,
    bool everything_changed) const {
  std::vector<Match> matches;
  std::vector<bool> used(slots.size(), false);
  std::size_t slots_left = slots.size();
  // Clean jobs only ever consider slots that changed this cycle, and at
  // steady state that set is tiny while the pending-job list is not —
  // precompute the changed-slot index list once instead of skip-scanning
  // the full slot vector per clean job.
  std::vector<std::size_t> changed_slots;
  if (!everything_changed) {
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (slots[i].changed) changed_slots.push_back(i);
    }
  }
  for (const Candidate& job : jobs) {
    if (slots_left == 0) break;
    // A dirty job retries the whole pool; a clean one only what changed —
    // it already failed against everything else while both sides were
    // unchanged (the invariant the anti-entropy sweep enforces).
    const bool dirty = everything_changed || job.changed;
    std::size_t best = slots.size();
    double best_rank = 0;
    const auto consider = [&](std::size_t i) {
      if (used[i]) return;
      const classad::ClassAd& slot_ad = *slots[i].entry->ad;
      if (!classad::symmetric_match(*job.entry->ad, slot_ad)) return;
      const double rank = classad::eval_rank(*job.entry->ad, slot_ad);
      if (best == slots.size() || rank > best_rank) {
        best = i;
        best_rank = rank;
      }
    };
    if (dirty) {
      for (std::size_t i = 0; i < slots.size(); ++i) consider(i);
    } else {
      for (const std::size_t i : changed_slots) consider(i);
    }
    if (best < slots.size()) {
      used[best] = true;
      --slots_left;
      matches.push_back(Match{*job.name, *slots[best].entry->ad});
    }
  }
  return matches;
}

void PoolNegotiator::record_violation(const std::string& text) {
  ++*divergences_;
  divergence_counter_.inc();
  if (violations_->size() < 32) violations_->push_back(text);
}

void PoolNegotiator::run_sweep(const std::vector<Match>& delta_matches,
                               const std::vector<Candidate>& jobs,
                               const std::vector<Candidate>& slots) {
  ++*sweeps_;

  // The retained full-requery reference path, timed as one unit: re-read
  // the pool the way the pre-delta negotiator did, deep-build the job
  // list, run the full-scan matcher.
  const std::uint64_t t0 = clock_ ? clock_() : 0;
  const std::vector<Collector::AdPtr> requeried =
      collector_.query(slot_constraint_);
  (void)requeried;
  std::vector<IdleJob> reference_jobs;
  reference_jobs.reserve(jobs.size());
  for (const Candidate& job : jobs) {
    reference_jobs.push_back(IdleJob{*job.name, *job.entry->ad});
  }
  std::vector<Collector::AdPtr> reference_slots;
  reference_slots.reserve(slots.size());
  for (const Candidate& slot : slots) {
    reference_slots.push_back(slot.entry->ad);
  }
  const std::vector<Match> reference =
      match_jobs_to_slots_reference(reference_jobs, reference_slots);
  if (clock_) reference_cycle_ns_.push_back(clock_() - t0);

  // Matcher equivalence: the delta-restricted greedy pass must produce
  // exactly what the full scan produces on the same state.
  if (reference.size() != delta_matches.size()) {
    record_violation("pool_negotiator/match-equivalence: delta made " +
                     std::to_string(delta_matches.size()) +
                     " matches, reference made " +
                     std::to_string(reference.size()));
  } else {
    for (std::size_t i = 0; i < reference.size(); ++i) {
      const auto ref_slot = reference[i].slot_ad.eval_string("Name");
      const auto delta_slot = delta_matches[i].slot_ad.eval_string("Name");
      if (reference[i].job_id != delta_matches[i].job_id ||
          ref_slot != delta_slot) {
        record_violation(
            "pool_negotiator/match-equivalence: pair " + std::to_string(i) +
            " differs: delta=(" + delta_matches[i].job_id + "," +
            delta_slot.value_or("?") + ") reference=(" +
            reference[i].job_id + "," + ref_slot.value_or("?") + ")");
        break;
      }
    }
  }

  // Mirror state audit: names + content checksums must equal a fresh full
  // read. Divergence is recorded, then repaired so one bug does not poison
  // every later cycle.
  const std::map<std::string, std::uint64_t> truth = collector_.checksums();
  std::vector<std::string> divergent;
  auto mirror_it = mirror_->begin();
  auto truth_it = truth.begin();
  while (mirror_it != mirror_->end() || truth_it != truth.end()) {
    if (truth_it == truth.end() ||
        (mirror_it != mirror_->end() && mirror_it->first < truth_it->first)) {
      record_violation("pool_negotiator/anti-entropy: mirror has stale ad '" +
                       mirror_it->first + "'");
      divergent.push_back(mirror_it->first);
      ++mirror_it;
    } else if (mirror_it == mirror_->end() ||
               truth_it->first < mirror_it->first) {
      record_violation("pool_negotiator/anti-entropy: mirror missing ad '" +
                       truth_it->first + "'");
      divergent.push_back(truth_it->first);
      ++truth_it;
    } else {
      if (mirror_it->second.checksum != truth_it->second) {
        record_violation(
            "pool_negotiator/anti-entropy: mirror content differs for '" +
            mirror_it->first + "'");
        divergent.push_back(mirror_it->first);
      }
      ++mirror_it;
      ++truth_it;
    }
  }
  for (const std::string& name : divergent) {
    holds_->erase(name);  // repair replaces the entry, hold and all
    const Collector::AdPtr ad = collector_.lookup(name);
    if (!ad) {
      mirror_->erase(name);
      continue;
    }
    MirrorEntry entry;
    entry.ad = ad;
    const auto checksum = truth.find(name);
    entry.checksum = checksum == truth.end() ? 0 : checksum->second;
    entry.is_job = classify_job(*ad, entry.user);
    if (entry.is_job) fair_share_->note_user(entry.user);
    (*mirror_)[name] = std::move(entry);
  }
}

std::size_t PoolNegotiator::negotiate_once() {
  const double now = host_.now();
  ++*cycles_;
  cycles_counter_.inc();
  const std::uint64_t t0 = clock_ ? clock_() : 0;

  bool resynced = false;
  std::vector<std::string> changed = ingest_deltas(resynced);

  // Lapsed holds (lost claims / lost match notifies) re-enter negotiation
  // as changed on both sides. The hold index keeps this O(active holds);
  // scanning the whole mirror here would put an O(pool) term back into
  // every delta cycle.
  for (auto it = holds_->begin(); it != holds_->end();) {
    if (it->second <= now) {
      const auto entry = mirror_->find(it->first);
      if (entry != mirror_->end()) entry->second.hold_until = -1.0;
      changed.push_back(it->first);
      it = holds_->erase(it);
    } else {
      ++it;
    }
  }
  std::sort(changed.begin(), changed.end());
  changed.erase(std::unique(changed.begin(), changed.end()), changed.end());

  const bool sweep =
      options_.full_sweep_every > 0 &&
      *cycles_ % static_cast<std::uint64_t>(options_.full_sweep_every) == 0;

  if (changed.empty() && !resynced && !sweep) {
    // Nothing moved since last cycle: the whole point of the delta path.
    ++*skipped_cycles_;
    skipped_counter_.inc();
    if (clock_) delta_cycle_ns_.push_back(clock_() - t0);
    return 0;
  }

  const std::vector<Candidate> slots = eligible_slots(changed, resynced, now);
  const std::vector<Candidate> jobs =
      ordered_pending_jobs(changed, resynced, now);
  const std::vector<Match> matched = match_candidates(jobs, slots, resynced);
  if (clock_) delta_cycle_ns_.push_back(clock_() - t0);

  if (sweep) run_sweep(matched, jobs, slots);

  // Apply match side-effects and hand each match to its owning PoolRunner.
  std::set<std::string> matched_users;
  for (const Match& match : matched) {
    const auto job_it = mirror_->find(match.job_id);
    if (job_it == mirror_->end()) continue;
    MirrorEntry& job = job_it->second;
    job.hold_until = now + options_.hold_timeout;
    (*holds_)[match.job_id] = job.hold_until;
    const auto slot_name = match.slot_ad.eval_string("Name");
    if (slot_name) {
      const auto slot_it = mirror_->find(*slot_name);
      if (slot_it != mirror_->end()) {
        slot_it->second.hold_until = now + options_.hold_timeout;
        (*holds_)[*slot_name] = slot_it->second.hold_until;
      }
    }
    ++(*matched_by_user_)[job.user];
    fair_share_->charge(job.user, 1.0, now);
    matched_users.insert(job.user);
    ++*matches_;
    matches_counter_.inc();
    const auto runner = job.ad->eval_string("MyAddress");
    if (runner) {
      sim::Payload payload;
      payload.set("job", match.job_id);
      payload.set("user", job.user);
      payload.set("slot_name", slot_name.value_or(""));
      payload.set("slot_address",
                  match.slot_ad.eval_string("MyAddress").value_or(""));
      rpc_.notify(sim::Address::parse(*runner), "negotiator.match",
                  std::move(payload));
    }
  }

  // Starvation bookkeeping: a user whose pending jobs were candidates and
  // won nothing lost a real negotiation round.
  std::set<std::string> pending_users;
  for (const Candidate& job : jobs) pending_users.insert(job.entry->user);
  for (const std::string& user : pending_users) {
    if (matched_users.count(user)) {
      fair_share_->note_served(user);
    } else {
      fair_share_->note_starved(user);
    }
  }
  return matched.size();
}

std::vector<Match> PoolNegotiator::reference_matches() {
  const double now = host_.now();
  // The reference path re-reads the pool the way the pre-delta negotiator
  // did every cycle; that cost is part of what the delta path is measured
  // against.
  const std::vector<Collector::AdPtr> requeried =
      collector_.query(slot_constraint_);
  (void)requeried;
  const std::vector<Candidate> slots = eligible_slots({}, true, now);
  const std::vector<Candidate> jobs = ordered_pending_jobs({}, true, now);
  std::vector<IdleJob> reference_jobs;
  reference_jobs.reserve(jobs.size());
  for (const Candidate& job : jobs) {
    reference_jobs.push_back(IdleJob{*job.name, *job.entry->ad});
  }
  std::vector<Collector::AdPtr> reference_slots;
  reference_slots.reserve(slots.size());
  for (const Candidate& slot : slots) {
    reference_slots.push_back(slot.entry->ad);
  }
  return match_jobs_to_slots_reference(reference_jobs, reference_slots);
}

void PoolNegotiator::audit(std::vector<std::string>& out) const {
  for (const std::string& violation : *violations_) out.push_back(violation);
}

}  // namespace condorg::condor
