// Condor Shadow: the submit-side representative of one running job.
//
// The shadow claims a startd slot, activates the job, receives its
// checkpoints and redirected system calls ("Remote I/O services", §6), and
// detects slot death by polling. On eviction or loss it reports the job
// back for re-queueing with the last checkpoint, so completed work is
// conserved across machines — the migration half of the GlideIn story.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "condorg/sim/host.h"
#include "condorg/sim/network.h"
#include "condorg/sim/rpc.h"

namespace condorg::condor {

struct ShadowJob {
  std::string job_id;
  double total_work_seconds = 0;
  double checkpointed_work = 0;  // carried over from previous executions
};

struct ShadowOptions {
  double poll_interval = 120.0;
  int max_missed_polls = 3;
  double rpc_timeout = 30.0;
};

class Shadow {
 public:
  enum class Outcome { kPending, kDone, kRequeued };

  /// `on_done(job_id)` — job finished all its work.
  /// `on_requeue(job_id, checkpointed_work, reason)` — execution ended early
  /// (eviction, slot death, claim failure); the job should run again
  /// elsewhere starting from `checkpointed_work`.
  Shadow(sim::Host& host, sim::Network& network, ShadowJob job,
         sim::Address startd, std::string claim_id, ShadowOptions options,
         std::function<void(const std::string&)> on_done,
         std::function<void(const std::string&, double, const std::string&)>
             on_requeue);
  ~Shadow();

  Shadow(const Shadow&) = delete;
  Shadow& operator=(const Shadow&) = delete;

  /// Claim the slot and activate the job.
  void start();

  Outcome outcome() const { return outcome_; }
  double last_checkpoint() const { return job_.checkpointed_work; }
  std::uint64_t io_bytes() const { return io_bytes_; }
  std::uint64_t io_ops() const { return io_ops_; }
  std::uint64_t checkpoints_received() const { return checkpoints_; }
  const std::string& job_id() const { return job_.job_id; }
  sim::Address address() const { return {host_.name(), service_}; }

 private:
  void on_message(const sim::Message& message);
  void poll();
  void finish(Outcome outcome, const std::string& reason);
  void release_slot();

  sim::Host& host_;
  sim::Network& network_;
  ShadowJob job_;
  sim::Address startd_;
  std::string claim_id_;
  std::string service_;
  ShadowOptions options_;
  std::function<void(const std::string&)> on_done_;
  std::function<void(const std::string&, double, const std::string&)>
      on_requeue_;
  sim::RpcClient rpc_;
  Outcome outcome_ = Outcome::kPending;
  sim::EventId poll_event_ = sim::kInvalidEvent;
  int missed_polls_ = 0;
  bool activated_ = false;
  std::uint64_t io_bytes_ = 0;
  std::uint64_t io_ops_ = 0;
  std::uint64_t checkpoints_ = 0;
};

}  // namespace condorg::condor
