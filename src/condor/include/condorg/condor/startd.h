// Condor Startd: the daemon that turns a machine into a pool member.
//
// This is the "mobile sandbox" of the GlideIn mechanism (§5): started on a
// grid-allocated node, it advertises itself to the user's personal
// Collector, accepts claims, runs jobs under system-call redirection,
// checkpoints them periodically, evicts them gracefully (with a final
// checkpoint) when the machine's owner returns or the site allocation
// expires, and shuts itself down after a configurable idle period "thus
// guarding against runaway daemons."
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "condorg/classad/classad.h"
#include "condorg/sim/host.h"
#include "condorg/sim/lifetime.h"
#include "condorg/sim/network.h"
#include "condorg/sim/rpc.h"
#include "condorg/util/rng.h"

namespace condorg::condor {

struct StartdOptions {
  sim::Address collector;
  double advertise_period = 300.0;
  double ad_ttl_factor = 3.0;
  /// Periodic checkpoint interval while running a job; 0 disables. Eviction
  /// always takes a final checkpoint (graceful preemption); a host *crash*
  /// loses work back to the last periodic checkpoint.
  double checkpoint_interval = 600.0;
  /// Remote-syscall traffic: while running, the sandboxed job sends an I/O
  /// record to its shadow with this period; 0 disables.
  double io_interval = 0.0;
  std::uint64_t io_bytes_per_op = 64 * 1024;

  // --- GlideIn lifecycle ---
  /// Absolute sim time at which the site's batch allocation ends; the
  /// daemon evicts any job (with checkpoint) and exits.
  double allocation_expires_at = 1e18;
  /// Shut down after being continuously unclaimed this long; <=0 disables.
  double idle_timeout = 0.0;

  // --- opportunistic desktop behaviour ---
  /// When true the machine's owner comes and goes; an arriving owner evicts
  /// the running job and the slot advertises State="Owner".
  bool owner_activity = false;
  double mean_owner_away_seconds = 3600.0;
  double mean_owner_busy_seconds = 900.0;

  /// Static machine properties merged into every ad (Arch, Memory, ...).
  classad::ClassAd base_ad;
};

class Startd {
 public:
  enum class State { kOwner, kUnclaimed, kClaimed, kRunning, kExited };

  /// `on_exit` fires when the daemon shuts down (allocation expiry, idle
  /// timeout) — for a GlideIn this is when its batch job slot frees up.
  Startd(sim::Host& host, sim::Network& network, std::string slot_name,
         StartdOptions options, std::function<void()> on_exit = nullptr);
  ~Startd();

  Startd(const Startd&) = delete;
  Startd& operator=(const Startd&) = delete;

  const std::string& slot_name() const { return slot_name_; }
  sim::Address address() const { return {host_.name(), service_}; }
  State state() const { return state_; }
  bool exited() const { return state_ == State::kExited; }

  /// Ask the daemon to shut down gracefully (evicting any job first).
  void shutdown(const std::string& reason);

  // --- statistics ---
  std::uint64_t jobs_started() const { return jobs_started_; }
  std::uint64_t jobs_completed() const { return jobs_completed_; }
  std::uint64_t evictions() const { return evictions_; }
  std::uint64_t checkpoints_taken() const { return checkpoints_; }

  static const char* to_string(State state);

 private:
  struct Claim {
    std::string claim_id;
    std::string job_id;
    sim::Address shadow;
  };

  void install();
  void advertise();
  void send_ad();
  void on_message(const sim::Message& message);
  void activate(const sim::Message& message);
  void complete_job();
  void evict(const std::string& reason, bool then_exit);
  void finish_exit(const std::string& reason);
  void owner_cycle();
  void touch_activity() { last_activity_ = host_.now(); }
  void idle_check();
  double work_done_now() const;
  void notify_shadow(const std::string& type, sim::Payload payload);

  sim::Host& host_;
  sim::Network& network_;
  sim::Lifetime life_;
  std::string slot_name_;
  std::string service_;
  StartdOptions options_;
  std::function<void()> on_exit_;
  sim::RpcClient rpc_;
  util::Rng rng_;

  State state_ = State::kUnclaimed;
  std::optional<Claim> claim_;
  // Running-job bookkeeping.
  double activated_at_ = 0;
  double base_work_done_ = 0;     // checkpointed work at activation
  double work_remaining_ = 0;
  sim::EventId completion_event_ = sim::kInvalidEvent;
  sim::EventId checkpoint_event_ = sim::kInvalidEvent;
  sim::EventId io_event_ = sim::kInvalidEvent;
  double last_activity_ = 0;
  int crash_listener_ = 0;

  std::uint64_t jobs_started_ = 0;
  std::uint64_t jobs_completed_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t checkpoints_ = 0;
};

}  // namespace condorg::condor
