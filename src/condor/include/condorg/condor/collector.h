// Condor Collector: the pool's bulletin board.
//
// Every startd (including GlideIn daemons started on remote grid resources,
// §5 of the paper) periodically advertises a machine ClassAd here; the
// Negotiator queries the collector during each matchmaking cycle. Ads are
// soft state with a TTL, so daemons that die — or glide-ins whose site
// allocation expired — simply age out.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "condorg/classad/classad.h"
#include "condorg/sim/det.h"
#include "condorg/sim/host.h"
#include "condorg/sim/network.h"

namespace condorg::condor {

class Collector {
 public:
  /// Personal-pool daemon on the submit host; query() is a same-host local
  /// API for the Negotiator.
  CONDORG_HOST_LOCAL("user");

  static constexpr const char* kService = "condor.collector";

  /// Query results share ownership of the stored ads instead of deep-copying
  /// them: a 10k-slot pool hands the Negotiator 10k refcount bumps, not 10k
  /// attribute-map clones. Ads are immutable once advertised (re-advertising
  /// replaces the pointer), so the aliasing is safe.
  using AdPtr = std::shared_ptr<const classad::ClassAd>;

  Collector(sim::Host& host, sim::Network& network);
  ~Collector();

  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  sim::Address address() const { return {host_.name(), kService}; }

  /// All live machine ads (TTL not yet lapsed) in ad-name order, optionally
  /// filtered by a constraint evaluated against each ad. Local API — the
  /// Negotiator runs in the same "personal Condor" on the same host.
  std::vector<AdPtr> query(const classad::ExprPtr& constraint = nullptr) const;

  /// Live ad count.
  std::size_t live_count() const;

  /// Remove an ad immediately (explicit invalidation on daemon shutdown).
  void invalidate(const std::string& name);

  std::uint64_t ads_received() const { return ads_received_; }

 private:
  struct Entry {
    AdPtr ad;
    sim::Time expires_at = 0;
  };
  // Lazily-deleted expiry heap node. An entry's live deadline always has a
  // matching node (advertise pushes one); nodes for superseded deadlines or
  // invalidated names are discarded when popped.
  struct Deadline {
    sim::Time when = 0;
    std::string name;
    bool after(const Deadline& other) const { return when > other.when; }
  };

  void install();
  void on_message(const sim::Message& message);
  /// Pop expired deadlines and erase entries whose TTL has lapsed. O(expired
  /// log n) instead of a full-pool scan per query.
  void prune() const;

  sim::Host& host_;
  sim::Network& network_;
  // `mutable` keeps prune()'s interior mutability; ordered map for query
  // determinism, lazily-deleted min-heap on `when`.
  mutable det::HostLocal<std::map<std::string, Entry>> entries_;
  mutable det::HostLocal<std::vector<Deadline>> expiry_heap_;
  int boot_id_ = 0;
  int crash_listener_ = 0;
  std::uint64_t ads_received_ = 0;
};

}  // namespace condorg::condor
