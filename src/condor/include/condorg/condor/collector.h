// Condor Collector: the pool's bulletin board.
//
// Every startd (including GlideIn daemons started on remote grid resources,
// §5 of the paper) periodically advertises a machine ClassAd here; the
// Negotiator queries the collector during each matchmaking cycle. Ads are
// soft state with a TTL, so daemons that die — or glide-ins whose site
// allocation expired — simply age out.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "condorg/classad/classad.h"
#include "condorg/sim/det.h"
#include "condorg/sim/host.h"
#include "condorg/sim/network.h"
#include "condorg/util/metrics.h"

namespace condorg::condor {

class Collector {
 public:
  /// Personal-pool daemon on the submit host; query() is a same-host local
  /// API for the Negotiator.
  CONDORG_HOST_LOCAL("user");

  static constexpr const char* kService = "condor.collector";

  /// Query results share ownership of the stored ads instead of deep-copying
  /// them: a 10k-slot pool hands the Negotiator 10k refcount bumps, not 10k
  /// attribute-map clones. Ads are immutable once advertised (re-advertising
  /// replaces the pointer), so the aliasing is safe.
  using AdPtr = std::shared_ptr<const classad::ClassAd>;

  Collector(sim::Host& host, sim::Network& network);
  ~Collector();

  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  sim::Address address() const { return {host_.name(), kService}; }

  /// All live machine ads (TTL not yet lapsed) in ad-name order, optionally
  /// filtered by a constraint evaluated against each ad. Local API — the
  /// Negotiator runs in the same "personal Condor" on the same host.
  std::vector<AdPtr> query(const classad::ExprPtr& constraint = nullptr) const;

  /// Live ad count.
  std::size_t live_count() const;

  /// Remove an ad immediately (explicit invalidation on daemon shutdown).
  void invalidate(const std::string& name);

  std::uint64_t ads_received() const { return ads_received_; }

  // --- sharded views + incremental (delta) subscription ---
  //
  // Every content change (new ad, changed ad, invalidation, TTL expiry)
  // bumps a monotone change sequence and appends to a bounded delta log.
  // A subscriber (the pool Negotiator) replays deltas since its last seen
  // sequence instead of re-reading the whole pool; when the log no longer
  // reaches back far enough — or the collector restarted and the sequence
  // reset — query_delta() reports a resync and the subscriber falls back to
  // a full query(). A re-publish whose ad text is byte-identical to the
  // stored one only refreshes the TTL: no sequence bump, no delta, no view
  // invalidation (counted in `collector_noop_updates`).

  /// One change. `ad == nullptr` is a tombstone (invalidated or expired).
  struct Delta {
    std::uint64_t seq = 0;
    std::string name;
    std::string shard;
    AdPtr ad;
    std::uint64_t checksum = 0;  // content checksum; 0 for tombstones
  };

  /// Shard key of an ad: "job/<JobUniverse>/<JobStatus>" for job ads,
  /// "machine/<State>" for machine ads, "other" for anything else.
  static std::string shard_of(const classad::ClassAd& ad);

  /// Sequence number of the latest recorded change (0 = none yet).
  std::uint64_t change_seq() const { return *change_seq_; }

  /// Append every delta with seq > `since` (in sequence order) to `out`.
  /// Returns false — with `out` untouched — when the log cannot serve
  /// `since` (truncated past it, or `since` is from a previous incarnation);
  /// the caller must resync from query().
  bool query_delta(std::uint64_t since, std::vector<Delta>& out) const;

  /// Live ads of one shard, in ad-name order.
  std::vector<AdPtr> query_shard(const std::string& shard) const;
  /// Sorted shard keys with at least one live ad.
  std::vector<std::string> shard_names() const;
  std::size_t shard_size(const std::string& shard) const;

  /// name -> content checksum of every live ad (prunes first). The
  /// anti-entropy sweep compares a subscriber's mirror against this.
  std::map<std::string, std::uint64_t> checksums() const;

  /// The live ad with this name, or nullptr.
  AdPtr lookup(const std::string& name) const;

  std::uint64_t noop_updates() const { return *noop_updates_; }

 private:
  struct Entry {
    AdPtr ad;
    sim::Time expires_at = 0;
    std::uint64_t checksum = 0;  // FNV-1a of the advertised ad text
    std::string shard;
  };
  // Lazily-deleted expiry heap node. An entry's live deadline always has a
  // matching node (advertise pushes one); nodes for superseded deadlines or
  // invalidated names are discarded when popped.
  struct Deadline {
    sim::Time when = 0;
    std::string name;
    bool after(const Deadline& other) const { return when > other.when; }
  };

  void install();
  void on_message(const sim::Message& message);
  /// Pop expired deadlines and erase entries whose TTL has lapsed. O(expired
  /// log n) instead of a full-pool scan per query.
  void prune() const;
  /// Bump the change sequence and append to the (bounded) delta log.
  void record_delta(const std::string& name, const std::string& shard,
                    AdPtr ad, std::uint64_t checksum) const;
  /// Drop `name` from the shard index + record a tombstone.
  void drop_entry(const std::string& name, const Entry& entry) const;

  /// Delta-log retention: enough to bridge many negotiation cycles at
  /// steady state, small enough that a storm degrades to one resync
  /// instead of unbounded memory.
  static constexpr std::size_t kDeltaLogCap = 8192;

  sim::Host& host_;
  sim::Network& network_;
  // `mutable` keeps prune()'s interior mutability; ordered map for query
  // determinism, lazily-deleted min-heap on `when`.
  mutable det::HostLocal<std::map<std::string, Entry>> entries_;
  mutable det::HostLocal<std::vector<Deadline>> expiry_heap_;
  /// shard key -> live ad names (the sharded views).
  mutable det::HostLocal<std::map<std::string, std::set<std::string>>> shards_;
  mutable det::HostLocal<std::vector<Delta>> delta_log_;
  mutable det::HostLocal<std::uint64_t> change_seq_;
  det::HostLocal<std::uint64_t> noop_updates_;
  util::Counter& noop_counter_;
  int boot_id_ = 0;
  int crash_listener_ = 0;
  std::uint64_t ads_received_ = 0;
};

}  // namespace condorg::condor
