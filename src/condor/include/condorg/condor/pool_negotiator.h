// Pool-wide incremental (delta) Negotiator.
//
// The personal Negotiator (negotiator.h) re-reads the whole pool every
// cycle — fine for one user's private Collector, fatal at the portal scale
// of ROADMAP item 1 (thousands of agents sharing one central pool). This
// daemon colocates with the central Collector and subscribes to its change
// sequence instead: each cycle replays only the ads that changed since the
// last cycle, so the steady-state cost tracks churn, not pool size. Jobs
// enter the pool as *job ads* published by each user's PoolRunner; matches
// go back to the owning runner as a `negotiator.match` notify.
//
// Soundness of the restriction: a pending job that failed against every
// then-eligible slot can, while both sides stay unchanged, never start
// matching — so a *clean* job need only be retried against slots that
// changed, while a *dirty* job (its ad changed) retries everything. A
// periodic anti-entropy sweep proves it: the mirror is checksum-compared
// against a full Collector read and the delta-restricted matcher's output
// is compared against the retained full-scan reference matcher on the same
// state. Divergence surfaces through audit() as an invariant violation.
//
// Cross-user fairness is enforced here, at negotiation time: candidate
// jobs are ordered by batch::FairShareTable (decayed effective usage,
// starvation promotion) before the greedy matcher runs.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "condorg/batch/fair_share_scheduler.h"
#include "condorg/classad/classad.h"
#include "condorg/condor/collector.h"
#include "condorg/condor/negotiator.h"
#include "condorg/sim/det.h"
#include "condorg/sim/host.h"
#include "condorg/sim/rpc.h"
#include "condorg/util/metrics.h"

namespace condorg::condor {

struct PoolNegotiatorOptions {
  double cycle_period = 60.0;
  /// Selects negotiable machine ads out of the mirror.
  std::string slot_constraint = "State == \"Unclaimed\"";
  /// Anti-entropy: every Nth cycle re-reads the full pool, checksum-audits
  /// the mirror, and cross-checks the delta matcher against the full-scan
  /// reference. 0 disables (tests only).
  int full_sweep_every = 16;
  /// A match puts a local hold on both sides until the claim shows up as an
  /// ad change; a lost claim lapses after this long and both sides re-enter
  /// negotiation as changed.
  double hold_timeout = 180.0;
  batch::FairShareTable::Options fair_share;
};

class PoolNegotiator {
 public:
  /// Central-manager daemon, same host as the pool Collector.
  CONDORG_HOST_LOCAL("central");

  static constexpr const char* kService = "condor.pool_negotiator";

  using Options = PoolNegotiatorOptions;
  /// Wall-clock source for benchmark timing; unset (the default) means no
  /// timing is taken — simulation behavior never depends on it.
  using Clock = std::function<std::uint64_t()>;

  PoolNegotiator(sim::Host& host, sim::Network& network, Collector& collector,
                 Options options = {});
  ~PoolNegotiator();

  PoolNegotiator(const PoolNegotiator&) = delete;
  PoolNegotiator& operator=(const PoolNegotiator&) = delete;

  /// Begin periodic cycles.
  void start();

  /// Run one cycle immediately; returns matches made.
  std::size_t negotiate_once();

  /// Run the retained full-requery reference path once, with no
  /// side-effects on the pool: full Collector query plus full-scan
  /// reference matcher over every pending job. Returns the matches it
  /// would have made. This is the baseline the delta path is benchmarked
  /// (and audited) against.
  std::vector<Match> reference_matches();

  // --- statistics ---
  std::uint64_t cycles() const { return *cycles_; }
  std::uint64_t matches_made() const { return *matches_; }
  std::uint64_t skipped_cycles() const { return *skipped_cycles_; }
  std::uint64_t full_resyncs() const { return *full_resyncs_; }
  std::uint64_t sweeps() const { return *sweeps_; }
  std::uint64_t divergences() const { return *divergences_; }
  const std::map<std::string, std::uint64_t>& matched_by_user() const {
    return *matched_by_user_;
  }
  std::size_t mirror_size() const { return mirror_->size(); }
  batch::FairShareTable& fair_share() { return *fair_share_; }

  /// Invariant-audit hook: appends one line per recorded anti-entropy
  /// divergence or delta-vs-reference matcher disagreement.
  void audit(std::vector<std::string>& out) const;

  // --- benchmark timing (inert unless a clock is injected) ---
  void set_clock(Clock clock) { clock_ = std::move(clock); }
  const std::vector<std::uint64_t>& delta_cycle_ns() const {
    return delta_cycle_ns_;
  }
  const std::vector<std::uint64_t>& reference_cycle_ns() const {
    return reference_cycle_ns_;
  }

 private:
  struct MirrorEntry {
    Collector::AdPtr ad;
    std::uint64_t checksum = 0;
    bool is_job = false;
    std::string user;         // job ads only
    double hold_until = -1.0;  // >= now: matched, claim in flight
  };
  /// A job or slot eligible for this cycle's matcher.
  struct Candidate {
    const std::string* name = nullptr;
    const MirrorEntry* entry = nullptr;
    bool changed = false;
  };

  void cycle();
  /// Throw away the mirror and rebuild it from a full Collector read.
  void resync();
  /// Apply this cycle's deltas; returns the set of changed ad names.
  /// Sets `resynced` when the log could not serve us and a full rebuild
  /// happened instead.
  std::vector<std::string> ingest_deltas(bool& resynced);
  static bool classify_job(const classad::ClassAd& ad, std::string& user);
  bool slot_eligible(const MirrorEntry& entry, double now) const;
  bool job_pending(const MirrorEntry& entry, double now) const;
  /// Greedy fair-share matcher: `jobs` in priority order, each tried
  /// against every unheld slot (dirty jobs) or only changed slots (clean
  /// jobs). Byte-equivalent to the reference matcher under the delta
  /// invariant (the sweep enforces this).
  std::vector<Match> match_candidates(const std::vector<Candidate>& jobs,
                                      const std::vector<Candidate>& slots,
                                      bool everything_changed) const;
  /// Order pending jobs: FairShareTable user order, then ad name.
  std::vector<Candidate> ordered_pending_jobs(
      const std::vector<std::string>& changed, bool all_changed, double now);
  std::vector<Candidate> eligible_slots(const std::vector<std::string>& changed,
                                        bool all_changed, double now) const;
  void record_violation(const std::string& text);
  void run_sweep(const std::vector<Match>& delta_matches,
                 const std::vector<Candidate>& jobs,
                 const std::vector<Candidate>& slots);

  sim::Host& host_;
  Collector& collector_;
  Options options_;
  classad::ExprPtr slot_constraint_;
  sim::RpcClient rpc_;
  Clock clock_;

  det::HostLocal<std::map<std::string, MirrorEntry>> mirror_;
  /// Names (jobs and slots) with an active match hold: exactly the mirror
  /// entries whose hold_until >= 0. Indexed separately so the per-cycle
  /// lapse check costs O(active holds), not O(pool).
  det::HostLocal<std::map<std::string, double>> holds_;
  det::HostLocal<std::uint64_t> last_seq_;
  det::HostLocal<batch::FairShareTable> fair_share_;
  det::HostLocal<std::map<std::string, std::uint64_t>> matched_by_user_;
  det::HostLocal<std::vector<std::string>> violations_;

  det::HostLocal<std::uint64_t> cycles_;
  det::HostLocal<std::uint64_t> matches_;
  det::HostLocal<std::uint64_t> skipped_cycles_;
  det::HostLocal<std::uint64_t> full_resyncs_;
  det::HostLocal<std::uint64_t> sweeps_;
  det::HostLocal<std::uint64_t> divergences_;

  util::Counter& cycles_counter_;
  util::Counter& matches_counter_;
  util::Counter& skipped_counter_;
  util::Counter& divergence_counter_;

  // det-local(delta_cycle_ns_): bench-only wall timings, written and read
  // solely by the benchmark harness; simulation behavior never reads them.
  std::vector<std::uint64_t> delta_cycle_ns_;
  // det-local(reference_cycle_ns_): same bench-only timing side channel.
  std::vector<std::uint64_t> reference_cycle_ns_;

  bool started_ = false;
  int boot_id_ = 0;
  int crash_listener_ = 0;
};

}  // namespace condorg::condor
