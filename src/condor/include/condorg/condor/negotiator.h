// Condor Negotiator: the Matchmaker.
//
// Each negotiation cycle pairs idle jobs (from the Schedd's queue) with
// unclaimed machine ads (from the Collector) using bilateral ClassAd
// matching (Raman et al. [25], referenced in §4.4/§5 of the paper), ranking
// candidates by the job's Rank expression.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "condorg/classad/classad.h"
#include "condorg/condor/collector.h"
#include "condorg/sim/host.h"

namespace condorg::condor {

struct IdleJob {
  std::string job_id;
  classad::ClassAd ad;
};

/// One job<->slot pairing produced by a cycle.
struct Match {
  std::string job_id;
  classad::ClassAd slot_ad;  // includes Name and MyAddress
};

/// Pure matchmaking: greedily assign each job (in order) its highest-Rank
/// matching slot; each slot is used at most once. Exposed separately from
/// the daemon for direct use by brokers and benchmarks.
std::vector<Match> match_jobs_to_slots(
    const std::vector<IdleJob>& jobs,
    const std::vector<classad::ClassAd>& slots);

struct NegotiatorOptions {
  double cycle_period = 60.0;
};

class Negotiator {
 public:
  using JobSource = std::function<std::vector<IdleJob>()>;
  using MatchSink = std::function<void(const Match&)>;
  using Options = NegotiatorOptions;

  Negotiator(sim::Host& host, Collector& collector, JobSource jobs,
             MatchSink sink, Options options = {});

  /// Begin periodic negotiation cycles.
  void start();

  /// Run one cycle immediately (also used by tests).
  std::size_t negotiate_once();

  std::uint64_t cycles() const { return cycles_; }
  std::uint64_t matches_made() const { return matches_; }

 private:
  void cycle();

  sim::Host& host_;
  Collector& collector_;
  JobSource jobs_;
  MatchSink sink_;
  Options options_;
  bool started_ = false;
  int boot_id_ = 0;
  std::uint64_t cycles_ = 0;
  std::uint64_t matches_ = 0;
};

}  // namespace condorg::condor
