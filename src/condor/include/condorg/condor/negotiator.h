// Condor Negotiator: the Matchmaker.
//
// Each negotiation cycle pairs idle jobs (from the Schedd's queue) with
// unclaimed machine ads (from the Collector) using bilateral ClassAd
// matching (Raman et al. [25], referenced in §4.4/§5 of the paper), ranking
// candidates by the job's Rank expression.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "condorg/classad/classad.h"
#include "condorg/condor/collector.h"
#include "condorg/sim/det.h"
#include "condorg/sim/host.h"
#include "condorg/util/metrics.h"

namespace condorg::condor {

struct IdleJob {
  std::string job_id;
  classad::ClassAd ad;
};

/// One job<->slot pairing produced by a cycle.
struct Match {
  std::string job_id;
  classad::ClassAd slot_ad;  // includes Name and MyAddress
};

/// Pure matchmaking: greedily assign each job (in order) its highest-Rank
/// matching slot; each slot is used at most once. Exposed separately from
/// the daemon for direct use by brokers and benchmarks.
///
/// This is the optimized path: before running full bilateral matching, each
/// job's Requirements is analyzed once into a list of `TARGET.Attr <op>
/// literal` conjuncts, and each slot's referenced attributes are resolved to
/// literal values once per call. A slot whose literals falsify any conjunct
/// can never satisfy the conjunction, so it is rejected without touching the
/// evaluator; anything not provably rejectable falls through to full
/// symmetric_match. Results are byte-identical to
/// match_jobs_to_slots_reference (pinned by tests).
std::vector<Match> match_jobs_to_slots(
    const std::vector<IdleJob>& jobs,
    const std::vector<Collector::AdPtr>& slots);

/// Convenience overload over plain ads (wraps each slot in a non-owning
/// pointer); kept for callers and tests that own their slot vectors.
std::vector<Match> match_jobs_to_slots(
    const std::vector<IdleJob>& jobs,
    const std::vector<classad::ClassAd>& slots);

/// The original straight-line matcher: full symmetric_match against every
/// slot, no prefilter, no caching. Retained as the behavioral oracle for
/// equivalence tests and as the baseline side of the matchmaking benchmark.
std::vector<Match> match_jobs_to_slots_reference(
    const std::vector<IdleJob>& jobs,
    const std::vector<Collector::AdPtr>& slots);

struct NegotiatorOptions {
  double cycle_period = 60.0;
  /// ClassAd constraint selecting negotiable slot ads from the collector.
  /// Compiled once at daemon construction, not re-parsed per cycle.
  std::string slot_constraint = "State == \"Unclaimed\"";
};

class Negotiator {
 public:
  /// Personal-pool daemon on the submit host.
  CONDORG_HOST_LOCAL("user");

  using JobSource = std::function<std::vector<IdleJob>()>;
  using MatchSink = std::function<void(const Match&)>;
  using Options = NegotiatorOptions;

  Negotiator(sim::Host& host, Collector& collector, JobSource jobs,
             MatchSink sink, Options options = {});

  /// Begin periodic negotiation cycles.
  void start();

  /// Run one cycle immediately (also used by tests).
  std::size_t negotiate_once();

  std::uint64_t cycles() const { return *cycles_; }
  std::uint64_t matches_made() const { return *matches_; }

 private:
  void cycle();

  sim::Host& host_;
  Collector& collector_;
  JobSource jobs_;
  MatchSink sink_;
  Options options_;
  classad::ExprPtr slot_constraint_;  // compiled options_.slot_constraint
  // Metric handles resolved once; Counter references stay stable for the
  // registry's lifetime, so the match loop skips the name+label lookup.
  util::Counter& cycles_counter_;
  util::Counter& matches_counter_;
  bool started_ = false;
  int boot_id_ = 0;
  det::HostLocal<std::uint64_t> cycles_;
  det::HostLocal<std::uint64_t> matches_;
};

}  // namespace condorg::condor
