#include "condorg/condor/startd.h"

#include <utility>

namespace condorg::condor {
namespace {
constexpr double kNotifyTimeout = 30.0;
constexpr int kNotifyRetries = 10;
}  // namespace

const char* Startd::to_string(State state) {
  switch (state) {
    case State::kOwner: return "Owner";
    case State::kUnclaimed: return "Unclaimed";
    case State::kClaimed: return "Claimed";
    case State::kRunning: return "Running";
    case State::kExited: return "Exited";
  }
  return "?";
}

Startd::Startd(sim::Host& host, sim::Network& network, std::string slot_name,
               StartdOptions options, std::function<void()> on_exit)
    : host_(host),
      network_(network),
      slot_name_(std::move(slot_name)),
      service_("startd." + slot_name_),
      options_(std::move(options)),
      on_exit_(std::move(on_exit)),
      rpc_(host, network, service_ + ".rpc"),
      rng_(host.sim().make_rng("startd." + slot_name_)) {
  install();
  last_activity_ = host_.now();
  advertise();
  if (options_.owner_activity) owner_cycle();
  if (options_.idle_timeout > 0) {
    host_.post(options_.idle_timeout / 4, life_.wrap([this] { idle_check(); }));
  }
  if (options_.allocation_expires_at < 1e17) {
    host_.post(options_.allocation_expires_at - host_.now(),
               life_.wrap([this] {
                 if (state_ == State::kRunning) {
                   evict("allocation expired", /*then_exit=*/true);
                 } else if (state_ != State::kExited) {
                   finish_exit("allocation expired");
                 }
               }));
  }
  // A host crash kills the daemon outright: no eviction notice, no
  // checkpoint — the shadow must discover the loss by probing.
  crash_listener_ = host_.add_crash_listener([this] {
    state_ = State::kExited;
    if (on_exit_) on_exit_();
  });
}

Startd::~Startd() {
  life_.revoke();
  host_.remove_crash_listener(crash_listener_);
  if (host_.alive() && state_ != State::kExited) {
    host_.unregister_service(service_);
  }
}

void Startd::install() {
  host_.register_service(service_,
                         [this](const sim::Message& m) { on_message(m); });
}

void Startd::advertise() {
  if (state_ == State::kExited) return;
  send_ad();
  host_.post(options_.advertise_period, life_.wrap([this] { advertise(); }));
}

void Startd::send_ad() {
  classad::ClassAd ad = options_.base_ad;
  ad.insert_string("Name", slot_name_);
  ad.insert_string("MyAddress", address().str());
  ad.insert_string("State", to_string(state_));
  // Deliberately no heartbeat timestamp: liveness is the TTL refresh, and a
  // content-stable ad lets the Collector's checksum no-op path absorb the
  // periodic re-advertise instead of fanning it out as a delta to every
  // subscriber.
  sim::Payload payload;
  payload.set("name", slot_name_);
  payload.set("ad", ad.unparse());
  payload.set_double("ttl",
                     options_.advertise_period * options_.ad_ttl_factor);
  rpc_.notify(options_.collector, "collector.advertise", std::move(payload));
}

double Startd::work_done_now() const {
  return base_work_done_ + (host_.now() - activated_at_);
}

void Startd::notify_shadow(const std::string& type, sim::Payload payload) {
  if (!claim_) return;
  payload.set("claim_id", claim_->claim_id);
  payload.set("job_id", claim_->job_id);
  payload.set("slot", slot_name_);
  // Reliable-ish delivery: retry until acked or retries exhausted. done and
  // evict must not be lost silently or the shadow would wait forever.
  struct Attempt {
    int remaining;
  };
  auto attempt = std::make_shared<Attempt>(Attempt{kNotifyRetries});
  auto send = std::make_shared<std::function<void()>>();
  const sim::Address shadow = claim_->shadow;
  *send = [this, type, payload, attempt,
           weak = std::weak_ptr<std::function<void()>>(send), shadow]() {
    const auto self = weak.lock();
    if (!self) return;
    rpc_.call(shadow, type, payload, kNotifyTimeout,
              [this, attempt, self](bool ok, const sim::Payload&) {
                if (ok) return;
                if (--attempt->remaining <= 0) return;  // give up
                host_.post(kNotifyTimeout,
                           life_.wrap([self] { (*self)(); }));
              });
  };
  (*send)();
}

void Startd::on_message(const sim::Message& message) {
  touch_activity();
  sim::Payload reply;
  if (message.type == "startd.claim") {
    if (state_ == State::kUnclaimed) {
      claim_ = Claim{message.body.get("claim_id"), message.body.get("job_id"),
                     sim::Address::parse(message.body.get("shadow"))};
      state_ = State::kClaimed;
      reply.set_bool("ok", true);
      send_ad();
    } else {
      reply.set_bool("ok", false);
      reply.set("why", std::string("slot is ") + to_string(state_));
    }
    sim::rpc_reply(network_, message, address(), std::move(reply));
    return;
  }
  if (message.type == "startd.activate") {
    if (state_ == State::kClaimed && claim_ &&
        claim_->claim_id == message.body.get("claim_id")) {
      activate(message);
      reply.set_bool("ok", true);
    } else {
      reply.set_bool("ok", false);
      reply.set("why", "no matching claim");
    }
    sim::rpc_reply(network_, message, address(), std::move(reply));
    return;
  }
  if (message.type == "startd.release") {
    if (claim_ && claim_->claim_id == message.body.get("claim_id")) {
      if (state_ == State::kRunning) {
        host_.sim().cancel(completion_event_);
        host_.sim().cancel(checkpoint_event_);
        host_.sim().cancel(io_event_);
      }
      claim_.reset();
      if (state_ != State::kExited) state_ = State::kUnclaimed;
      send_ad();
    }
    reply.set_bool("ok", true);
    sim::rpc_reply(network_, message, address(), std::move(reply));
    return;
  }
  if (message.type == "startd.status") {
    reply.set_bool("ok", true);
    reply.set("state", to_string(state_));
    reply.set("job_id", claim_ ? claim_->job_id : "");
    if (state_ == State::kRunning) {
      reply.set_double("work_done", work_done_now());
    }
    sim::rpc_reply(network_, message, address(), std::move(reply));
    return;
  }
  if (message.type == "startd.shutdown") {
    reply.set_bool("ok", true);
    sim::rpc_reply(network_, message, address(), std::move(reply));
    shutdown("requested");
    return;
  }
  host_.metrics()
      .counter("unknown_message",
               {{"daemon", "startd"}, {"type", message.type}})
      .inc();
  reply.set_bool("ok", false);
  reply.set("why", "unknown operation: " + message.type);
  sim::rpc_reply(network_, message, address(), std::move(reply));
}

void Startd::activate(const sim::Message& message) {
  state_ = State::kRunning;
  activated_at_ = host_.now();
  base_work_done_ = message.body.get_double("work_done");
  work_remaining_ =
      message.body.get_double("total_work") - base_work_done_;
  if (work_remaining_ < 0) work_remaining_ = 0;
  ++jobs_started_;
  send_ad();

  completion_event_ =
      host_.post(work_remaining_, life_.wrap([this] { complete_job(); }));
  if (options_.checkpoint_interval > 0) {
    auto periodic = std::make_shared<std::function<void()>>();
    *periodic = [this,
                 weak = std::weak_ptr<std::function<void()>>(periodic)] {
      if (state_ != State::kRunning) return;
      const auto self = weak.lock();
      if (!self) return;
      ++checkpoints_;
      sim::Payload ckpt;
      ckpt.set_double("work_done", work_done_now());
      notify_shadow("shadow.checkpoint", std::move(ckpt));
      checkpoint_event_ = host_.post(options_.checkpoint_interval,
                                     life_.wrap([self] { (*self)(); }));
    };
    checkpoint_event_ =
        host_.post(options_.checkpoint_interval,
                   life_.wrap([periodic] { (*periodic)(); }));
  }
  if (options_.io_interval > 0) {
    auto io = std::make_shared<std::function<void()>>();
    *io = [this, weak = std::weak_ptr<std::function<void()>>(io)] {
      if (state_ != State::kRunning) return;
      const auto self = weak.lock();
      if (!self) return;
      sim::Payload record;
      record.set_uint("bytes", options_.io_bytes_per_op);
      // One-way: the shadow never acks io records, so the retrying
      // notify_shadow path would time out and resend, double-counting io
      // in the shadow's accounting. A lost record only skews stats.
      if (claim_) {
        record.set("claim_id", claim_->claim_id);
        record.set("job_id", claim_->job_id);
        record.set("slot", slot_name_);
        rpc_.notify(claim_->shadow, "shadow.io", std::move(record));
      }
      io_event_ =
          host_.post(options_.io_interval, life_.wrap([self] { (*self)(); }));
    };
    io_event_ =
        host_.post(options_.io_interval, life_.wrap([io] { (*io)(); }));
  }
}

void Startd::complete_job() {
  if (state_ != State::kRunning) return;
  ++jobs_completed_;
  host_.sim().cancel(checkpoint_event_);
  host_.sim().cancel(io_event_);
  sim::Payload done;
  done.set_double("work_done", work_done_now());
  notify_shadow("shadow.done", std::move(done));
  claim_.reset();
  state_ = State::kUnclaimed;
  touch_activity();
  send_ad();
}

void Startd::evict(const std::string& reason, bool then_exit) {
  if (state_ != State::kRunning) {
    if (then_exit) finish_exit(reason);
    return;
  }
  ++evictions_;
  host_.sim().cancel(completion_event_);
  host_.sim().cancel(checkpoint_event_);
  host_.sim().cancel(io_event_);
  // Graceful preemption checkpoints at eviction time (Condor's standard
  // universe behaviour), so no work is lost on *polite* eviction.
  sim::Payload payload;
  payload.set_double("work_done", work_done_now());
  payload.set("reason", reason);
  notify_shadow("shadow.evict", std::move(payload));
  claim_.reset();
  if (then_exit) {
    finish_exit(reason);
  } else {
    state_ = options_.owner_activity ? State::kOwner : State::kUnclaimed;
    send_ad();
  }
}

void Startd::finish_exit(const std::string&) {
  if (state_ == State::kExited) return;
  state_ = State::kExited;
  sim::Payload payload;
  payload.set("name", slot_name_);
  rpc_.notify(options_.collector, "collector.invalidate", std::move(payload));
  host_.unregister_service(service_);
  if (on_exit_) on_exit_();
}

void Startd::shutdown(const std::string& reason) {
  if (state_ == State::kRunning) {
    evict(reason, /*then_exit=*/true);
  } else {
    finish_exit(reason);
  }
}

void Startd::owner_cycle() {
  if (state_ == State::kExited) return;
  // Owner away -> machine available; owner back -> evict and block.
  const double away = rng_.exponential(options_.mean_owner_away_seconds);
  host_.post(away, life_.wrap([this] {
    if (state_ == State::kExited) return;
    if (state_ == State::kRunning) {
      evict("owner returned", /*then_exit=*/false);
    } else if (state_ != State::kClaimed) {
      state_ = State::kOwner;
      send_ad();
    } else {
      // Claimed but not yet running: break the claim.
      claim_.reset();
      state_ = State::kOwner;
      send_ad();
    }
    const double busy = rng_.exponential(options_.mean_owner_busy_seconds);
    host_.post(busy, life_.wrap([this] {
      if (state_ == State::kOwner) {
        state_ = State::kUnclaimed;
        touch_activity();
        send_ad();
      }
      owner_cycle();
    }));
  }));
}

void Startd::idle_check() {
  if (state_ == State::kExited) return;
  if (state_ == State::kUnclaimed &&
      host_.now() - last_activity_ >= options_.idle_timeout) {
    finish_exit("idle timeout");
    return;
  }
  host_.post(options_.idle_timeout / 4, life_.wrap([this] { idle_check(); }));
}

}  // namespace condorg::condor
