#include "condorg/gass/staging_cache.h"

#include <utility>

namespace condorg::gass {

StagingCache::StagingCache(sim::Host& host, sim::Network& network,
                           const std::string& reply_service)
    : host_(host),
      client_(host, network, reply_service),
      entries_(host, "stagecache.entries"),
      hits_counter_(host.metrics().counter("staging_cache_hits",
                                           {{"site", host.name()}})),
      misses_counter_(host.metrics().counter("staging_cache_misses",
                                             {{"site", host.name()}})) {}

void StagingCache::fetch(const sim::Address& server, const std::string& path,
                         std::uint64_t expected_checksum, FetchCallback done,
                         double timeout) {
  auto it = entries_->find(path);
  if (it != entries_->end() && !it->second.in_flight) {
    if (expected_checksum == 0 ||
        it->second.info.checksum == expected_checksum) {
      ++hits_;
      hits_counter_.inc();
      done(it->second.info);
      return;
    }
    // The executable content changed under this path: invalidate and fall
    // through to a fresh transfer.
    entries_->erase(it);
    it = entries_->end();
  }
  if (it != entries_->end()) {
    // A transfer for this path is already in flight: coalesce. If the
    // caller expects different content than the in-flight transfer was
    // started for, the checksum check on arrival sorts it out (the waiter
    // is handed whatever arrives; a mismatched expectation re-fetches via
    // the invalidation path above on its retry).
    ++hits_;
    hits_counter_.inc();
    it->second.waiters.push_back(std::move(done));
    return;
  }
  Entry& entry = (*entries_)[path];
  entry.in_flight = true;
  entry.expected_checksum = expected_checksum;
  entry.waiters.push_back(std::move(done));
  ++misses_;
  misses_counter_.inc();
  start_transfer(server, path, timeout);
}

void StagingCache::start_transfer(const sim::Address& server,
                                  const std::string& path, double timeout) {
  client_.get(
      server, path,
      [this, path](std::optional<FileInfo> file) {
        const auto it = entries_->find(path);
        if (it == entries_->end()) return;  // invalidated while in flight
        // Take the waiters before invoking any: a callback may re-enter
        // fetch() for the same path.
        std::vector<FetchCallback> waiters = std::move(it->second.waiters);
        it->second.waiters.clear();
        if (!file) {
          // Failed transfer: nothing to cache; every waiter retries through
          // its own ladder (JobManager::stage_in backs off and re-fetches).
          entries_->erase(it);
          for (auto& waiter : waiters) waiter(std::nullopt);
          return;
        }
        it->second.info = std::move(*file);
        it->second.in_flight = false;
        // Hand each waiter its own copy: a waiter may invalidate the entry
        // (fetch with a different expected checksum), which would erase the
        // stored FileInfo out from under the rest.
        const FileInfo info = it->second.info;
        for (auto& waiter : waiters) waiter(info);
      },
      timeout);
}

}  // namespace condorg::gass
