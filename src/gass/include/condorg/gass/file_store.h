// In-memory file store backing GASS / GridFTP / MSS services.
//
// Files carry literal content (used for checksums and for small control
// files) plus a declared size that may exceed the literal content — event
// data in the CMS pipeline is gigabytes in the simulated world but only a
// checksum + size here. Transfer durations are computed from declared size.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "condorg/util/rng.h"

namespace condorg::gass {

struct FileData {
  FileData() = default;
  FileData(std::string content_in, std::uint64_t declared_size_in = 0)
      : content(std::move(content_in)), declared_size(declared_size_in) {}

  std::string content;
  std::uint64_t declared_size = 0;  // bytes for bandwidth modelling

  std::uint64_t size() const {
    return declared_size ? declared_size : content.size();
  }
  /// Content checksum, memoized by content identity: executables are
  /// checksummed on every stage/stat, so recomputing FNV over the literal
  /// bytes each call would dominate large-content serving. Code that
  /// mutates `content` in place must call invalidate_checksum() (FileStore
  /// does for append; put replaces the whole object).
  std::uint64_t checksum() const {
    if (!checksum_valid_) {
      checksum_cache_ = util::fnv1a(content);
      checksum_valid_ = true;
    }
    return checksum_cache_;
  }
  void invalidate_checksum() { checksum_valid_ = false; }

 private:
  mutable std::uint64_t checksum_cache_ = 0;
  mutable bool checksum_valid_ = false;
};

/// Size + checksum without the content: the no-copy stat fast path.
struct FileStat {
  std::uint64_t size = 0;
  std::uint64_t checksum = 0;
};

class FileStore {
 public:
  /// Create/overwrite a file.
  void put(const std::string& path, FileData data);
  void put(const std::string& path, std::string content,
           std::uint64_t declared_size = 0);

  /// Store only when `path` is absent (content-addressed staging: the same
  /// artifact is put once, no matter how many jobs reference it). Returns
  /// true when this call stored the file.
  bool put_if_absent(const std::string& path, std::string content,
                     std::uint64_t declared_size = 0);

  /// Append a chunk (G-Cat style); creates the file if missing. The chunk's
  /// declared size accumulates.
  void append(const std::string& path, const std::string& chunk,
              std::uint64_t chunk_size = 0);

  std::optional<FileData> get(const std::string& path) const;
  /// Borrowed view of a stored file (no copy); nullptr when absent. The
  /// pointer is invalidated by the next mutating call.
  const FileData* find(const std::string& path) const;
  /// Size + checksum without copying the content.
  std::optional<FileStat> stat(const std::string& path) const;
  bool contains(const std::string& path) const;
  bool erase(const std::string& path);
  std::vector<std::string> list(const std::string& prefix = "") const;
  std::size_t file_count() const { return files_.size(); }
  std::uint64_t total_bytes() const;

 private:
  std::map<std::string, FileData> files_;
};

}  // namespace condorg::gass
