// In-memory file store backing GASS / GridFTP / MSS services.
//
// Files carry literal content (used for checksums and for small control
// files) plus a declared size that may exceed the literal content — event
// data in the CMS pipeline is gigabytes in the simulated world but only a
// checksum + size here. Transfer durations are computed from declared size.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "condorg/util/rng.h"

namespace condorg::gass {

struct FileData {
  std::string content;
  std::uint64_t declared_size = 0;  // bytes for bandwidth modelling

  std::uint64_t size() const {
    return declared_size ? declared_size : content.size();
  }
  std::uint64_t checksum() const { return util::fnv1a(content); }
};

class FileStore {
 public:
  /// Create/overwrite a file.
  void put(const std::string& path, FileData data);
  void put(const std::string& path, std::string content,
           std::uint64_t declared_size = 0);

  /// Append a chunk (G-Cat style); creates the file if missing. The chunk's
  /// declared size accumulates.
  void append(const std::string& path, const std::string& chunk,
              std::uint64_t chunk_size = 0);

  std::optional<FileData> get(const std::string& path) const;
  bool contains(const std::string& path) const;
  bool erase(const std::string& path);
  std::vector<std::string> list(const std::string& prefix = "") const;
  std::size_t file_count() const { return files_.size(); }
  std::uint64_t total_bytes() const;

 private:
  std::map<std::string, FileData> files_;
};

}  // namespace condorg::gass
