// Client helper for FileService endpoints.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "condorg/gass/file_store.h"
#include "condorg/gsi/credential.h"
#include "condorg/sim/rpc.h"

namespace condorg::gass {

/// Result of a get/stat.
struct FileInfo {
  std::string content;
  std::uint64_t size = 0;
  std::uint64_t checksum = 0;
};

class FileClient {
 public:
  FileClient(sim::Host& host, sim::Network& network,
             const std::string& reply_service);

  /// Credential attached to every request (for authenticated services).
  void set_credential(const gsi::Credential& credential) {
    credential_ = credential.serialize();
  }
  void set_credential_text(std::string serialized) {
    credential_ = std::move(serialized);
  }
  void clear_credential() { credential_.clear(); }

  using GetCallback = std::function<void(std::optional<FileInfo>)>;
  using AckCallback = std::function<void(bool ok)>;

  void get(const sim::Address& server, const std::string& path,
           GetCallback callback, double timeout = 600.0);
  void put(const sim::Address& server, const std::string& path,
           std::string content, std::uint64_t declared_size,
           AckCallback callback, double timeout = 600.0);
  /// `writer` + `chunk_seq` (when writer is non-empty) make the append
  /// idempotent across retries: the server applies each (writer, seq) at
  /// most once.
  void append(const sim::Address& server, const std::string& path,
              std::string chunk, std::uint64_t chunk_size,
              AckCallback callback, double timeout = 600.0,
              const std::string& writer = "", std::uint64_t chunk_seq = 0);
  void stat(const sim::Address& server, const std::string& path,
            GetCallback callback, double timeout = 60.0);
  /// Ask `server` to fetch `remote_path` from `source` and store it as
  /// `path` (third-party transfer).
  void pull(const sim::Address& server, const std::string& path,
            const sim::Address& source, const std::string& remote_path,
            AckCallback callback, double timeout = 1200.0);

 private:
  sim::Payload base_payload(const std::string& path) const;

  sim::RpcClient rpc_;
  std::string credential_;
};

}  // namespace condorg::gass
