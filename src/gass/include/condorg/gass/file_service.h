// GASS / GridFTP file service (§3.4 of the paper).
//
// One service class covers the three data movers in the paper's deployment:
//   * the GASS server embedded in the GridManager (staging executables and
//     stdin to the site, streaming stdout/stderr back),
//   * GSI-authenticated GridFTP (shipping CMS event data to the NCSA
//     repository, fetching GlideIn binaries from a central repository), and
//   * the NCSA Mass Storage System used by the GridGaussian portal.
//
// Operations: get / put / append / stat, plus "pull" — a third-party
// transfer where this server fetches a file from another server (GridFTP
// style). Replies are delayed by the modelled transfer time of the file's
// declared size over the link, so benches observe realistic bandwidth
// behaviour. Optional GSI authentication rejects requests whose credential
// chain fails verification or whose identity is not in the gridmap.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <optional>
#include <string>

#include "condorg/gass/file_store.h"
#include "condorg/gsi/auth.h"
#include "condorg/sim/det.h"
#include "condorg/sim/host.h"
#include "condorg/sim/network.h"
#include "condorg/util/metrics.h"
#include "condorg/sim/rpc.h"

namespace condorg::gass {

class FileService {
 public:
  /// `service` is the endpoint name, e.g. "gass", "gridftp", "mss".
  FileService(sim::Host& host, sim::Network& network, std::string service,
              gsi::AuthConfig auth = {});
  ~FileService();

  FileService(const FileService&) = delete;
  FileService& operator=(const FileService&) = delete;

  sim::Address address() const { return {host_.name(), service_}; }
  FileStore& store() { return *store_; }
  const FileStore& store() const { return *store_; }

  /// When true (default), the service handler is re-registered on host
  /// restart and files survive (they are journalled to stable storage would
  /// be overkill; the store itself is a member of this object, which models
  /// a disk-backed spool). Set false to model scratch storage wiped by
  /// crashes.
  void set_survives_crash(bool survives) { survives_crash_ = survives; }

  // --- statistics ---
  std::uint64_t gets_served() const { return gets_; }
  std::uint64_t puts_served() const { return puts_; }
  std::uint64_t appends_served() const { return appends_; }
  std::uint64_t auth_failures() const { return auth_failures_; }
  std::uint64_t bytes_served() const { return bytes_served_; }

 private:
  void install();
  void on_message(const sim::Message& message);
  void reply_after_transfer(const sim::Message& request, sim::Payload reply,
                            std::uint64_t bytes);
  bool authenticate(const sim::Message& message, sim::Payload& reply) const;

  sim::Host& host_;
  sim::Network& network_;
  std::string service_;
  gsi::AuthConfig auth_;
  // FileService instances live on whichever host runs the endpoint (the
  // GridManager's embedded GASS server, a central GridFTP repository, the
  // NCSA MSS), so the store is host-owned without a fixed partition tag.
  det::HostLocal<FileStore> store_;
  /// Applied chunk_seq values per (path, writer) for idempotent appends.
  /// A set (not a high-water mark): retried and resent chunks may arrive
  /// out of order over the jittered network.
  det::HostLocal<std::map<std::string, std::set<std::uint64_t>>>
      applied_chunks_;
  bool survives_crash_ = true;
  int boot_id_ = 0;
  int crash_listener_ = 0;
  // Cached registry references (stable for the registry's lifetime) so the
  // per-transfer path does not rebuild label strings.
  util::Counter& bytes_counter_;
  util::Counter& auth_failures_counter_;
  util::Counter& gets_counter_;
  util::Counter& puts_counter_;
  util::Counter& appends_counter_;
  std::uint64_t gets_ = 0;
  std::uint64_t puts_ = 0;
  std::uint64_t appends_ = 0;
  std::uint64_t auth_failures_ = 0;
  std::uint64_t bytes_served_ = 0;
  // Third-party pulls need a private RPC client.
  std::unique_ptr<sim::RpcClient> pull_rpc_;
};

}  // namespace condorg::gass
