// Per-site staging cache for GASS-fetched artifacts (§4 of the paper:
// "files are cached at the execution site so repeated jobs do not
// re-transfer them").
//
// One instance per site front-end (owned by the Gatekeeper). JobManagers
// staging a content-addressed executable go through fetch():
//   * a cached artifact with the expected checksum is served immediately
//     with zero network traffic (hit);
//   * concurrent fetches of one in-flight artifact coalesce onto a waiter
//     list behind a single transfer — N identical jobs landing at once cost
//     one GASS get;
//   * a cached artifact whose checksum does not match the caller's
//     expectation is invalidated and re-fetched (the executable content
//     changed under the same path).
// The cache models site scratch space: it does not survive host crashes
// (the Gatekeeper rebuilds an empty one on boot).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "condorg/gass/client.h"
#include "condorg/sim/det.h"
#include "condorg/sim/host.h"
#include "condorg/sim/network.h"
#include "condorg/util/metrics.h"

namespace condorg::gass {

class StagingCache {
 public:
  /// Site front-end scratch space, owned by the Gatekeeper. Waiter
  /// callbacks (JobManager stage-in continuations) run on the same host.
  CONDORG_HOST_LOCAL("site");

  /// `reply_service` names the FileClient's reply endpoint on `host` and
  /// must be unique per cache instance.
  StagingCache(sim::Host& host, sim::Network& network,
               const std::string& reply_service);

  StagingCache(const StagingCache&) = delete;
  StagingCache& operator=(const StagingCache&) = delete;

  using FetchCallback = std::function<void(std::optional<FileInfo>)>;

  /// Fetch `path` from `server`, serving from cache when possible.
  /// `expected_checksum` != 0 pins the content identity: a cached or
  /// arriving artifact with a different checksum is treated as stale and
  /// re-fetched once. 0 accepts whatever the server holds.
  void fetch(const sim::Address& server, const std::string& path,
             std::uint64_t expected_checksum, FetchCallback done,
             double timeout = 600.0);

  // --- statistics ---
  /// Served without starting a transfer (cached, or coalesced onto an
  /// in-flight one).
  std::uint64_t hits() const { return hits_; }
  /// Transfers started.
  std::uint64_t misses() const { return misses_; }
  std::size_t entry_count() const { return entries_->size(); }

 private:
  struct Entry {
    FileInfo info;
    bool in_flight = false;
    std::uint64_t expected_checksum = 0;  // of the in-flight transfer
    // det-local(waiters): Entry values live inside the HostLocal
    // entries_ map; every access already passes its ownership check.
    std::vector<FetchCallback> waiters;
  };

  void start_transfer(const sim::Address& server, const std::string& path,
                      double timeout);

  sim::Host& host_;
  FileClient client_;
  det::HostLocal<std::map<std::string, Entry>> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  util::Counter& hits_counter_;
  util::Counter& misses_counter_;
};

}  // namespace condorg::gass
