#include "condorg/gass/client.h"

namespace condorg::gass {

FileClient::FileClient(sim::Host& host, sim::Network& network,
                       const std::string& reply_service)
    : rpc_(host, network, reply_service) {}

sim::Payload FileClient::base_payload(const std::string& path) const {
  sim::Payload payload;
  payload.set("path", path);
  if (!credential_.empty()) payload.set("credential", credential_);
  return payload;
}

void FileClient::get(const sim::Address& server, const std::string& path,
                     GetCallback callback, double timeout) {
  rpc_.call(server, "file.get", base_payload(path), timeout,
            [callback = std::move(callback)](bool ok,
                                             const sim::Payload& reply) {
              if (!ok || !reply.get_bool("ok")) {
                callback(std::nullopt);
                return;
              }
              FileInfo info;
              info.content = reply.get("content");
              info.size = reply.get_uint("size");
              info.checksum = reply.get_uint("checksum");
              callback(std::move(info));
            });
}

void FileClient::put(const sim::Address& server, const std::string& path,
                     std::string content, std::uint64_t declared_size,
                     AckCallback callback, double timeout) {
  sim::Payload payload = base_payload(path);
  payload.set("content", std::move(content));
  payload.set_uint("size", declared_size);
  rpc_.call(server, "file.put", std::move(payload), timeout,
            [callback = std::move(callback)](bool ok,
                                             const sim::Payload& reply) {
              callback(ok && reply.get_bool("ok"));
            });
}

void FileClient::append(const sim::Address& server, const std::string& path,
                        std::string chunk, std::uint64_t chunk_size,
                        AckCallback callback, double timeout,
                        const std::string& writer, std::uint64_t chunk_seq) {
  sim::Payload payload = base_payload(path);
  payload.set("content", std::move(chunk));
  payload.set_uint("size", chunk_size);
  if (!writer.empty()) {
    payload.set("writer", writer);
    payload.set_uint("chunk_seq", chunk_seq);
  }
  rpc_.call(server, "file.append", std::move(payload), timeout,
            [callback = std::move(callback)](bool ok,
                                             const sim::Payload& reply) {
              callback(ok && reply.get_bool("ok"));
            });
}

void FileClient::stat(const sim::Address& server, const std::string& path,
                      GetCallback callback, double timeout) {
  rpc_.call(server, "file.stat", base_payload(path), timeout,
            [callback = std::move(callback)](bool ok,
                                             const sim::Payload& reply) {
              if (!ok || !reply.get_bool("ok")) {
                callback(std::nullopt);
                return;
              }
              FileInfo info;
              info.size = reply.get_uint("size");
              info.checksum = reply.get_uint("checksum");
              callback(std::move(info));
            });
}

void FileClient::pull(const sim::Address& server, const std::string& path,
                      const sim::Address& source,
                      const std::string& remote_path, AckCallback callback,
                      double timeout) {
  sim::Payload payload = base_payload(path);
  payload.set("source", source.str());
  payload.set("remote_path", remote_path);
  rpc_.call(server, "file.pull", std::move(payload), timeout,
            [callback = std::move(callback)](bool ok,
                                             const sim::Payload& reply) {
              callback(ok && reply.get_bool("ok"));
            });
}

}  // namespace condorg::gass
