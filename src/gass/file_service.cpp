#include "condorg/gass/file_service.h"

#include <utility>

namespace condorg::gass {
namespace {
constexpr double kPullTimeout = 600.0;
}

FileService::FileService(sim::Host& host, sim::Network& network,
                         std::string service, gsi::AuthConfig auth)
    : host_(host),
      network_(network),
      service_(std::move(service)),
      auth_(std::move(auth)),
      store_(host, "gass.store"),
      applied_chunks_(host, "gass.applied_chunks"),
      bytes_counter_(host.metrics().counter("gass.bytes_served",
                                            {{"service", service_}})),
      auth_failures_counter_(host.metrics().counter(
          "gass.auth_failures", {{"service", service_}})),
      gets_counter_(
          host.metrics().counter("gass.gets", {{"service", service_}})),
      puts_counter_(
          host.metrics().counter("gass.puts", {{"service", service_}})),
      appends_counter_(
          host.metrics().counter("gass.appends", {{"service", service_}})) {
  install();
  pull_rpc_ = std::make_unique<sim::RpcClient>(host_, network_,
                                               service_ + ".pull");
  boot_id_ = host_.add_boot([this] {
    if (survives_crash_) install();
  });
  crash_listener_ = host_.add_crash_listener([this] {
    if (!survives_crash_) store_ = FileStore{};
  });
}

FileService::~FileService() {
  host_.remove_boot(boot_id_);
  host_.remove_crash_listener(crash_listener_);
  if (host_.alive()) host_.unregister_service(service_);
}

void FileService::install() {
  host_.register_service(service_,
                         [this](const sim::Message& m) { on_message(m); });
}

bool FileService::authenticate(const sim::Message& message,
                               sim::Payload& reply) const {
  const gsi::AuthResult result =
      gsi::authenticate(auth_, message.body, host_.now());
  if (!result.ok) reply.set("why", result.why);
  return result.ok;
}

void FileService::reply_after_transfer(const sim::Message& request,
                                       sim::Payload reply,
                                       std::uint64_t bytes) {
  const double delay =
      network_.transfer_seconds(host_.name(), request.from.host, bytes);
  bytes_served_ += bytes;
  bytes_counter_.inc(bytes);
  host_.post(delay, [this, request, reply = std::move(reply)]() mutable {
    sim::rpc_reply(network_, request, address(), std::move(reply));
  });
}

void FileService::on_message(const sim::Message& message) {
  sim::Payload reply;
  reply.set_bool("ok", false);

  if (!authenticate(message, reply)) {
    ++auth_failures_;
    auth_failures_counter_.inc();
    sim::rpc_reply(network_, message, address(), std::move(reply));
    return;
  }

  const std::string path = message.body.get("path");

  if (message.type == "file.get") {
    // Borrowed view: serving a get must not copy the (possibly large)
    // content an extra time, and the stored entry memoizes its checksum.
    const FileData* file = store_->find(path);
    if (!file) {
      reply.set("why", "no such file: " + path);
      sim::rpc_reply(network_, message, address(), std::move(reply));
      return;
    }
    ++gets_;
    gets_counter_.inc();
    reply.set_bool("ok", true);
    reply.set("content", file->content);
    reply.set_uint("size", file->size());
    reply.set_uint("checksum", file->checksum());
    reply_after_transfer(message, std::move(reply), file->size());
    return;
  }

  if (message.type == "file.put") {
    const std::uint64_t size = message.body.get_uint("size");
    store_->put(path, message.body.get("content"), size);
    ++puts_;
    puts_counter_.inc();
    reply.set_bool("ok", true);
    reply_after_transfer(message, std::move(reply),
                         size ? size : message.body.get("content").size());
    return;
  }

  if (message.type == "file.append") {
    const std::uint64_t size = message.body.get_uint("size");
    // Idempotency: appends may be retried after a lost ack; a (writer,
    // chunk_seq) pair is applied at most once.
    bool duplicate = false;
    if (message.body.has("writer")) {
      const std::string key = path + "\x1f" + message.body.get("writer");
      const std::uint64_t seq = message.body.get_uint("chunk_seq");
      duplicate = !(*applied_chunks_)[key].insert(seq).second;
    }
    if (!duplicate) {
      store_->append(path, message.body.get("content"), size);
      ++appends_;
      appends_counter_.inc();
    }
    reply.set_bool("ok", true);
    const auto stat = store_->stat(path);
    reply.set_uint("new_size", stat ? stat->size : 0);
    reply_after_transfer(message, std::move(reply),
                         size ? size : message.body.get("content").size());
    return;
  }

  if (message.type == "file.stat") {
    // Fast path: size + memoized checksum, no FileData copy.
    if (const auto stat = store_->stat(path)) {
      reply.set_bool("ok", true);
      reply.set_uint("size", stat->size);
      reply.set_uint("checksum", stat->checksum);
    } else {
      reply.set("why", "no such file: " + path);
    }
    sim::rpc_reply(network_, message, address(), std::move(reply));
    return;
  }

  if (message.type == "file.pull") {
    // Third-party transfer: fetch `remote_path` from `source` into this
    // store as `path` (GridFTP-style server-to-server movement).
    const auto source = sim::Address::parse(message.body.get("source"));
    const std::string remote_path = message.body.get("remote_path");
    sim::Payload get_request;
    get_request.set("path", remote_path);
    if (message.body.has("credential")) {
      get_request.set("credential", message.body.get("credential"));
    }
    // Capture the original request so the final ack goes to the initiator.
    pull_rpc_->call(
        source, "file.get", std::move(get_request), kPullTimeout,
        [this, message, path](bool ok, const sim::Payload& got) {
          sim::Payload ack;
          if (!ok || !got.get_bool("ok")) {
            ack.set_bool("ok", false);
            ack.set("why", ok ? got.get("why") : "source unreachable");
          } else {
            FileData data;
            data.content = got.get("content");
            data.declared_size = got.get_uint("size");
            store_->put(path, std::move(data));
            ack.set_bool("ok", true);
            ack.set_uint("size", got.get_uint("size"));
            ack.set_uint("checksum", got.get_uint("checksum"));
          }
          sim::rpc_reply(network_, message, address(), std::move(ack));
        });
    return;
  }

  host_.metrics()
      .counter("unknown_message",
               {{"daemon", "file_service"}, {"type", message.type}})
      .inc();
  reply.set("why", "unknown operation: " + message.type);
  sim::rpc_reply(network_, message, address(), std::move(reply));
}

}  // namespace condorg::gass
