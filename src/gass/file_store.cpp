#include "condorg/gass/file_store.h"

namespace condorg::gass {

void FileStore::put(const std::string& path, FileData data) {
  files_[path] = std::move(data);
}

void FileStore::put(const std::string& path, std::string content,
                    std::uint64_t declared_size) {
  files_[path] = FileData{std::move(content), declared_size};
}

bool FileStore::put_if_absent(const std::string& path, std::string content,
                              std::uint64_t declared_size) {
  return files_
      .emplace(path, FileData{std::move(content), declared_size})
      .second;
}

void FileStore::append(const std::string& path, const std::string& chunk,
                       std::uint64_t chunk_size) {
  FileData& file = files_[path];
  file.content += chunk;
  file.invalidate_checksum();
  if (chunk_size) {
    file.declared_size += chunk_size;
  } else if (file.declared_size) {
    file.declared_size += chunk.size();
  }
}

std::optional<FileData> FileStore::get(const std::string& path) const {
  const auto it = files_.find(path);
  if (it == files_.end()) return std::nullopt;
  return it->second;
}

const FileData* FileStore::find(const std::string& path) const {
  const auto it = files_.find(path);
  return it == files_.end() ? nullptr : &it->second;
}

std::optional<FileStat> FileStore::stat(const std::string& path) const {
  const auto it = files_.find(path);
  if (it == files_.end()) return std::nullopt;
  return FileStat{it->second.size(), it->second.checksum()};
}

bool FileStore::contains(const std::string& path) const {
  return files_.count(path) > 0;
}

bool FileStore::erase(const std::string& path) {
  return files_.erase(path) > 0;
}

std::vector<std::string> FileStore::list(const std::string& prefix) const {
  std::vector<std::string> out;
  for (auto it = files_.lower_bound(prefix); it != files_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(it->first);
  }
  return out;
}

std::uint64_t FileStore::total_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [path, data] : files_) total += data.size();
  return total;
}

}  // namespace condorg::gass
